"""WAL format, tolerant recovery, and checkpoint round trips.

Everything here is deliberately low-level: raw segment/checkpoint files
are written, corrupted byte-by-byte, and read back, because recovery's
whole contract is about what survives *file-level* damage.  The
session-facing behaviour (crash a real process, recover, compare) lives
in ``test_crash_recovery.py``.
"""

import random
import struct

import pytest

from repro.api import Cluster, ClusterConfig, DurabilityConfig
from repro.cluster.store import DistributedGraphStore
from repro.graph.labelled import LabelledGraph
from repro.runtime.wal import (
    RECORD_HEADER,
    SEGMENT_HEADER,
    DurableLog,
    WalFormatError,
    WriteAheadLog,
    has_state,
    latest_checkpoint,
    list_checkpoints,
    list_segments,
    read_checkpoint,
    read_segment,
    recover_store,
    write_checkpoint,
)
from repro.workload import PatternQuery, Workload

OPS = [
    (("v+", 1, "a"), 1),
    (("v+", 2, "b"), 2),
    (("e+", 1, 2), 3),
    (("a", 1, 0), 4),
]


def record_offsets(raw):
    """Byte offset of every record in a segment's raw bytes."""
    offsets, cursor = [], SEGMENT_HEADER.size
    while cursor + RECORD_HEADER.size <= len(raw):
        offsets.append(cursor)
        length = struct.unpack_from("<I", raw, cursor)[0]
        cursor += RECORD_HEADER.size + length
    return offsets


def write_ops(directory, ops=OPS, **kwargs):
    wal = WriteAheadLog(directory, **kwargs)
    wal.open_segment(0)
    for op, tick in ops:
        wal.append(op, tick)
    wal.close()
    return wal


def durable_session(wal_dir, seed=0, partitions=3, **durability):
    workload = Workload([PatternQuery("ab", LabelledGraph.path("ab"))])
    session = Cluster.open(
        ClusterConfig(
            partitions=partitions,
            method="ldg",
            seed=seed,
            durability=DurabilityConfig(
                mode="wal", wal_dir=str(wal_dir), **durability
            ),
        ),
        workload=workload,
    )
    rng = random.Random(seed)
    graph = LabelledGraph()
    for v in range(30):
        graph.add_vertex(v, rng.choice("abc"))
    for v in range(1, 30):
        graph.add_edge(v, rng.randrange(v))
    session.ingest(graph)
    return session


class TestSegmentRoundTrip:
    def test_append_read_round_trip(self, tmp_path):
        write_ops(tmp_path)
        (segment,) = list_segments(tmp_path)
        assert list(read_segment(segment)) == [
            (tick, op) for op, tick in OPS
        ]

    def test_reopen_starts_a_fresh_segment(self, tmp_path):
        """Appending past a possibly-torn tail would bury corruption;
        every open targets a brand-new file."""
        write_ops(tmp_path)
        second = WriteAheadLog(tmp_path)
        second.open_segment(4)
        second.append(("v+", 9, "c", 0), 5)
        second.close()
        first, fresh = list_segments(tmp_path)
        assert first != fresh
        assert [tick for tick, _ in read_segment(fresh)] == [5]

    def test_rotation_respects_segment_bytes(self, tmp_path):
        write_ops(tmp_path, segment_bytes=64)
        segments = list_segments(tmp_path)
        assert len(segments) > 1
        replayed = [
            record for path in segments for record in read_segment(path)
        ]
        assert replayed == [(tick, op) for op, tick in OPS]

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = write_ops(tmp_path)
        with pytest.raises(WalFormatError, match="closed"):
            wal.append(("v+", 9, "c", 0), 9)

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "wal-00000000.seg"
        path.write_bytes(b"NOTAWAL!" + bytes(SEGMENT_HEADER.size))
        with pytest.raises(WalFormatError, match="magic"):
            list(read_segment(path))

    def test_future_version_raises(self, tmp_path):
        path = tmp_path / "wal-00000000.seg"
        path.write_bytes(SEGMENT_HEADER.pack(b"LOOMWAL1", 99, 0, 0))
        with pytest.raises(WalFormatError, match="v99"):
            list(read_segment(path))


class TestTornTails:
    def test_truncated_payload_ends_replay(self, tmp_path):
        write_ops(tmp_path)
        (segment,) = list_segments(tmp_path)
        segment.write_bytes(segment.read_bytes()[:-3])
        records = list(read_segment(segment))
        assert [tick for tick, _ in records] == [1, 2, 3]

    def test_truncated_header_ends_replay(self, tmp_path):
        write_ops(tmp_path)
        (segment,) = list_segments(tmp_path)
        raw = segment.read_bytes()
        # Chop into the *header* of the final record.
        segment.write_bytes(raw[: record_offsets(raw)[-1] + 5])
        assert [tick for tick, _ in read_segment(segment)] == [1, 2, 3]

    def test_flipped_byte_fails_crc(self, tmp_path):
        write_ops(tmp_path)
        (segment,) = list_segments(tmp_path)
        raw = bytearray(segment.read_bytes())
        raw[-2] ^= 0xFF
        segment.write_bytes(bytes(raw))
        assert [tick for tick, _ in read_segment(segment)] == [1, 2, 3]

    def test_absurd_length_claim_ends_replay(self, tmp_path):
        """A torn length field must not demand gigabytes of payload."""
        write_ops(tmp_path, ops=OPS[:1])
        (segment,) = list_segments(tmp_path)
        with open(segment, "ab") as file:
            file.write(RECORD_HEADER.pack(1 << 30, 0, 2))
        assert [tick for tick, _ in read_segment(segment)] == [1]


class TestCheckpoints:
    def test_round_trip(self, tmp_path):
        payload = b"columnar-image-bytes"
        path = write_checkpoint(tmp_path, 17, payload)
        assert read_checkpoint(path) == (17, payload)
        assert latest_checkpoint(tmp_path) == (17, payload)

    def test_corrupt_checkpoint_skipped_for_older_valid_one(self, tmp_path):
        write_checkpoint(tmp_path, 5, b"older-but-valid")
        newest = write_checkpoint(tmp_path, 9, b"newest")
        raw = bytearray(newest.read_bytes())
        raw[-1] ^= 0xFF
        newest.write_bytes(bytes(raw))
        assert read_checkpoint(newest) is None
        assert latest_checkpoint(tmp_path) == (5, b"older-but-valid")

    def test_truncated_checkpoint_is_none(self, tmp_path):
        path = write_checkpoint(tmp_path, 3, b"payload")
        path.write_bytes(path.read_bytes()[:10])
        assert read_checkpoint(path) is None
        assert latest_checkpoint(tmp_path) is None

    def test_has_state(self, tmp_path):
        assert not has_state(tmp_path)
        assert not has_state(tmp_path / "missing")
        write_checkpoint(tmp_path, 1, b"x")
        assert has_state(tmp_path)


class TestRecovery:
    def test_recovered_store_is_byte_identical(self, tmp_path):
        session = durable_session(tmp_path / "wal")
        try:
            live = session.store.export_columns()
            ticks = session.store.mutation_ticks
        finally:
            session.close()
        store, info = recover_store(tmp_path / "wal", partitions=3)
        assert store.export_columns() == live
        assert info.recovered_ticks == ticks
        assert not info.torn_tail

    def test_recovery_through_checkpoints(self, tmp_path):
        """A tiny checkpoint interval forces image+tail recovery (not a
        pure replay) -- still byte-identical."""
        session = durable_session(tmp_path / "wal", checkpoint_interval=16)
        try:
            live = session.store.export_columns()
            assert session.resilience.wal_checkpoints > 1
        finally:
            session.close()
        store, info = recover_store(tmp_path / "wal", partitions=3)
        assert store.export_columns() == live
        assert info.checkpoint_ticks > 0

    def test_records_behind_the_checkpoint_are_skipped(self, tmp_path):
        """A crash between checkpoint write and WAL truncation leaves
        already-applied records in the log; replay must skip, not
        re-apply, them."""
        session = durable_session(tmp_path / "wal")
        try:
            live = session.store.export_columns()
            ticks = session.store.mutation_ticks
            # Checkpoint manually, then resurrect the pre-checkpoint
            # segments as if truncation never happened.
            stale = {
                path.name: path.read_bytes()
                for path in list_segments(tmp_path / "wal")
            }
            session.checkpoint()
            for name, raw in stale.items():
                (tmp_path / "wal" / name).write_bytes(raw)
        finally:
            session.close()
        store, info = recover_store(tmp_path / "wal", partitions=3)
        assert store.export_columns() == live
        assert info.checkpoint_ticks == ticks
        assert info.skipped_ops > 0
        assert info.replayed_ops == 0

    def test_tick_gap_truncates_the_tail(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_segment(0)
        wal.append(("c", 4), 0)
        wal.append(("v+", 1, "a"), 1)
        wal.append(("v+", 2, "b"), 2)
        wal.append(("v+", 3, "c"), 5)  # ticks 3-4 lost
        wal.close()
        store, info = recover_store(tmp_path, partitions=2)
        assert info.replayed_ops == 2
        assert info.torn_tail
        assert info.recovered_ticks == 2
        assert store.graph.num_vertices == 2

    def test_barrier_without_covering_checkpoint_halts(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.open_segment(0)
        wal.append(("c", 4), 0)
        wal.append(("v+", 1, "a"), 1)
        wal.append(("!",), 2)  # un-checkpointed wholesale adoption
        wal.append(("v+", 2, "b"), 3)
        wal.close()
        store, info = recover_store(tmp_path, partitions=2)
        assert info.barrier_stopped
        assert info.recovered_ticks == 1
        assert store.graph.num_vertices == 1

    def test_empty_directory_recovers_empty_store(self, tmp_path):
        store, info = recover_store(tmp_path, partitions=4)
        assert store.graph.num_vertices == 0
        assert info.recovered_ticks == 0
        assert info.segments_read == 0


class TestDurableLog:
    def test_double_bind_rejected(self, tmp_path):
        store = DistributedGraphStore.incremental(2, 8)
        log = DurableLog(tmp_path)
        log.bind(store)
        try:
            with pytest.raises(WalFormatError, match="already bound"):
                log.bind(store)
        finally:
            log.close()

    def test_checkpoint_compacts_the_directory(self, tmp_path):
        session = durable_session(tmp_path / "wal")
        try:
            session.checkpoint()
            session.checkpoint()
            assert len(list_checkpoints(tmp_path / "wal")) == 1
            (segment,) = list_segments(tmp_path / "wal")
            # Only the leading capacity record survives truncation.
            records = list(read_segment(segment))
            assert [op[0] for _, op in records] == ["c"]
        finally:
            session.close()

    def test_close_unhooks_the_store(self, tmp_path):
        session = durable_session(tmp_path / "wal")
        store = session.store
        session.close()
        assert store.wal_hook is None

    def test_sync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="sync policy"):
            WriteAheadLog(tmp_path, sync="eventually")

    def test_config_round_trip(self, tmp_path):
        log = DurableLog(tmp_path)
        log.write_config({"partitions": 4, "method": "ldg"})
        assert DurableLog.read_config(tmp_path) == {
            "partitions": 4,
            "method": "ldg",
        }
        assert DurableLog.read_config(tmp_path / "missing") is None
        log.close()


class TestSessionGuards:
    def test_fresh_session_refuses_populated_wal_dir(self, tmp_path):
        session = durable_session(tmp_path / "wal")
        session.close()
        from repro.exceptions import SessionError

        with pytest.raises(SessionError, match="Cluster.recover"):
            durable_session(tmp_path / "wal")

    def test_checkpoint_without_durability_raises(self):
        from repro.exceptions import SessionError

        session = Cluster.open(ClusterConfig(partitions=2, method="ldg"))
        with pytest.raises(SessionError, match="durability"):
            session.checkpoint()

    def test_durability_config_validation(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            DurabilityConfig(mode="wal")  # wal_dir required
        with pytest.raises(ConfigurationError):
            DurabilityConfig(mode="wal", wal_dir="x", sync="sometimes")
        with pytest.raises(ConfigurationError):
            DurabilityConfig(mode="paper-tape", wal_dir="x")

    def test_durability_round_trips_through_cluster_config(self):
        config = ClusterConfig(
            partitions=4,
            durability=DurabilityConfig(
                mode="wal", wal_dir="wal/", sync="fsync",
                checkpoint_interval=128, segment_bytes=1 << 16,
            ),
        )
        rebuilt = ClusterConfig.from_dict(config.as_dict())
        assert rebuilt == config
        assert rebuilt.durability.enabled
