"""Generative differential harness for dynamic-graph churn.

A seeded simulator produces random event sequences -- vertex/edge
arrivals, explicit edge and vertex deletions, expiry-driven departures
(implicit: the window is small relative to the stream), re-adds of
deleted ids under *new* labels (slot-recycling stress) and re-creation
of deleted edges -- interleaved in arbitrary valid orders.  For every
seed the incremental Session state after ingesting the mixed stream must
be *equivalent to an offline rebuild from the surviving events*:

* the resident graph equals ``replay(events)`` (vertices, labels, edges),
* the assignment covers exactly the survivors, within capacity, with
  per-partition size accounting intact,
* the store's mirror and the partitioner's own assignment agree, and
* a snapshot/restore round-trip reproduces it all.

Placement *choices* are intentionally not compared against a from-scratch
rebuild -- streaming heuristics are history-dependent by design; the
differential contract is about state, and it is what pins the whole
retraction machinery (window, matcher, neighbour index, store, capacity
accounting) at once.
"""

import random

import pytest

from repro.api import Cluster, ClusterConfig
from repro.graph.labelled import LabelledGraph, edge_key
from repro.stream.events import (
    EdgeArrival,
    EdgeRemoval,
    VertexArrival,
    VertexRemoval,
)
from repro.stream.sources import replay
from repro.workload import PatternQuery, Workload

ALPHABET = "abcd"
SEEDS = range(24)


def _pick(rng, items):
    """Deterministic random choice from an arbitrarily ordered iterable."""
    pool = sorted(items, key=repr)
    return pool[rng.randrange(len(pool))]


def generate_events(seed, *, arrivals=40, keep_min=4):
    """One seeded random churn sequence over ``arrivals`` vertex arrivals.

    Every emitted removal references a live element, and a deleted
    vertex id may come back later carrying a different label -- the
    hardest case for interned-slot recycling and cached label state.
    """
    rng = random.Random(seed)
    live: dict[int, str] = {}
    live_edges: set[tuple[int, int]] = set()
    removed_ids: list[int] = []
    removed_edges: list[tuple[int, int]] = []
    events = []
    next_id = 0
    arrived = 0
    time = 0

    def arrive():
        nonlocal next_id, arrived, time
        if removed_ids and rng.random() < 0.3:
            vertex = removed_ids.pop(rng.randrange(len(removed_ids)))
        else:
            vertex = next_id
            next_id += 1
        label = rng.choice(ALPHABET)
        events.append(VertexArrival(vertex, label, time))
        live[vertex] = label
        arrived += 1
        time += 1
        neighbours = [v for v in live if v != vertex]
        for other in sorted(neighbours, key=repr)[: rng.randint(0, 2)]:
            events.append(EdgeArrival(other, vertex, time))
            live_edges.add(edge_key(other, vertex))
            time += 1

    while arrived < arrivals:
        roll = rng.random()
        if roll < 0.5 or len(live) < 2:
            arrive()
        elif roll < 0.62 and removed_edges:
            # Re-create a previously deleted edge (both endpoints live).
            u, v = removed_edges.pop(rng.randrange(len(removed_edges)))
            if u in live and v in live and edge_key(u, v) not in live_edges:
                events.append(EdgeArrival(u, v, time))
                live_edges.add(edge_key(u, v))
                time += 1
        elif roll < 0.8 and live_edges:
            u, v = _pick(rng, live_edges)
            events.append(EdgeRemoval(u, v, time))
            live_edges.discard(edge_key(u, v))
            removed_edges.append((u, v))
            time += 1
        elif len(live) > keep_min:
            vertex = _pick(rng, live)
            events.append(VertexRemoval(vertex, time))
            del live[vertex]
            live_edges.difference_update(
                e for e in set(live_edges) if vertex in e
            )
            removed_ids.append(vertex)
            time += 1
        else:
            arrive()
    return events


def churny_workload():
    return Workload(
        [
            PatternQuery("ab", LabelledGraph.path("ab"), 2.0),
            PatternQuery("abc", LabelledGraph.path("abc"), 1.0),
        ]
    )


def open_session(method, seed):
    return Cluster.open(
        ClusterConfig(
            partitions=3,
            method=method,
            window_size=7,
            motif_threshold=0.5,
            batch_size=16,
            seed=seed,
        ),
        workload=churny_workload(),
    )


def assert_equivalent_to_rebuild(session, events):
    expected = replay(events)
    # Resident graph == offline rebuild from the surviving events.
    assert session.graph == expected
    # Assignment covers exactly the survivors, within capacity.
    assert session.is_complete
    assignment = session.store.assignment
    assigned = assignment.assigned()
    assert set(assigned) == set(expected.vertices())
    sizes = assignment.sizes()
    assert sum(sizes) == expected.num_vertices
    assert [len(block) for block in assignment.blocks()] == sizes
    assert all(size <= assignment.capacity for size in sizes)
    # The partitioner's own assignment mirrors the store's exactly.
    if session._partitioner is not None:
        assert session._partitioner.assignment.assigned() == assigned
    # Snapshot/restore reproduces the churned state (nothing resurrects).
    restored = Cluster.restore(session.snapshot())
    assert restored.graph == expected
    assert restored.assignment.assigned() == assigned


class TestDifferentialChurn:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_loom_matches_offline_rebuild(self, seed):
        events = generate_events(seed)
        session = open_session("loom", seed)
        report = session.ingest(events)
        assert report.removals > 0  # the generator really churns
        assert_equivalent_to_rebuild(session, events)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_ldg_matches_offline_rebuild(self, seed):
        events = generate_events(seed + 1000)
        session = open_session("ldg", seed)
        session.ingest(events)
        assert_equivalent_to_rebuild(session, events)

    @pytest.mark.parametrize("seed", range(8))
    def test_split_ingest_matches_offline_rebuild(self, seed):
        """Churn spanning multiple ingests (removals of vertices placed by
        an earlier ingest) reaches the same surviving state."""
        events = generate_events(seed + 2000, arrivals=30)
        cut = len(events) // 2
        session = open_session("loom", seed)
        session.ingest(events[:cut])
        session.ingest(events[cut:])
        assert_equivalent_to_rebuild(session, events)

    @pytest.mark.parametrize("seed", range(8))
    def test_with_churn_respects_input_removals(self, seed):
        """Interleaving extra churn into a stream that already contains
        removal events must stay valid: no injected removal may collide
        with one the input stream issues later (code-review regression)."""
        from repro.stream.orderings import with_churn

        base = generate_events(seed + 4000)
        doubled = with_churn(
            base, delete_fraction=0.25, rng=random.Random(seed)
        )
        survivors = replay(doubled)  # raises on any invalid removal
        session = open_session("ldg", seed)
        session.ingest(doubled)
        assert session.graph == survivors

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("method", ["loom", "ldg"])
    def test_parallel_queries_match_serial_after_churn(self, seed, method):
        """The ``workers=2`` variant: after a churned ingest (slot
        recycling, retractions, re-adds) the sharded multi-process
        runtime must answer the sampled workload identically to the
        in-process executor, field for field."""
        from repro.api import WorkerConfig
        from repro.bench.scaling import default_start_method

        events = generate_events(seed + 5000)
        session = Cluster.open(
            ClusterConfig(
                partitions=3,
                method=method,
                window_size=7,
                motif_threshold=0.5,
                batch_size=16,
                seed=seed,
                worker=WorkerConfig(
                    count=2,
                    start_method=default_start_method(),
                    fallback_serial=False,
                ),
            ),
            workload=churny_workload(),
        )
        try:
            session.ingest(events, workers=1)
            serial = session.run_workload(executions=25, seed=9, workers=1)
            parallel = session.run_workload(executions=25, seed=9)
            assert parallel == serial
            for query in churny_workload():
                assert session.query(query, workers=2) == session.query(
                    query, workers=1
                )
        finally:
            session.close()

    @pytest.mark.parametrize("seed", range(6))
    def test_delta_replayed_workers_match_fresh_boot(self, seed):
        """Two sessions ingest the same churned stream through the same
        split; one keeps its workers resident across the split (the
        second half reaches them as a replayed mutation log), the other
        boots its workers fresh from a full snapshot of the final state.
        Both must answer the sampled workload identically to the serial
        executor, field for field -- the delta path may not leave even
        one bit of divergence behind."""
        from repro.api import WorkerConfig
        from repro.bench.scaling import default_start_method

        events = generate_events(seed + 6000)
        cut = len(events) // 2

        def churny_session(refresh_mode):
            return Cluster.open(
                ClusterConfig(
                    partitions=3,
                    method="ldg",
                    window_size=7,
                    motif_threshold=0.5,
                    batch_size=16,
                    seed=seed,
                    worker=WorkerConfig(
                        count=2,
                        start_method=default_start_method(),
                        fallback_serial=False,
                        refresh_mode=refresh_mode,
                    ),
                ),
                workload=churny_workload(),
            )

        resident = churny_session("delta")
        fresh = churny_session("full")
        try:
            resident.ingest(events[:cut], workers=1)
            resident.run_workload(executions=25, seed=9)  # boots the pool
            boot_pool = resident.pool
            resident.ingest(events[cut:], workers=1)
            serial = resident.run_workload(executions=25, seed=11, workers=1)
            replayed = resident.run_workload(executions=25, seed=11)
            # The same workers answered, synced by replaying the second
            # half's mutation log -- not by a respawn or a re-prime.
            assert resident.pool is boot_pool
            assert boot_pool.delta_refreshes >= 1
            assert boot_pool.refreshes == 0

            # Identical coordinator state, workers booted from scratch.
            fresh.ingest(events[:cut], workers=1)
            fresh.ingest(events[cut:], workers=1)
            booted = fresh.run_workload(executions=25, seed=11)
            assert fresh.pool.delta_refreshes == 0

            assert replayed == serial
            assert booted == serial
            for query in churny_workload():
                reference = resident.query(query, workers=1)
                assert resident.query(query, workers=2) == reference
                assert fresh.query(query, workers=2) == reference
        finally:
            resident.close()
            fresh.close()

    @pytest.mark.parametrize("seed", range(8))
    def test_matcher_state_dies_with_the_stream(self, seed):
        """After a churned ingest the matcher tracks no match touching a
        deleted vertex, and retraction/eviction accounting is disjoint
        and complete: every registered match was eventually dropped."""
        events = generate_events(seed + 3000)
        session = open_session("loom", seed)
        session.ingest(events)
        matcher = session._partitioner.matcher
        assert not matcher.matches()  # the flush drained the window
        stats = matcher.stats
        assert (
            stats["trusted"] + stats["verified"]
            == stats["evicted"] + stats["retracted"]
        )
