"""Session-level churn: ``retract`` and ``rebalance`` typed commands."""

import random

import pytest

from repro.api import Cluster, ClusterConfig
from repro.exceptions import SessionError
from repro.graph import LabelledGraph
from repro.graph.generators import planted_partition
from repro.workload import PatternQuery, Workload


def small_workload():
    return Workload([PatternQuery("ab", LabelledGraph.path("ab"))])


def loaded_session(method="ldg", partitions=3, seed=5, n=60):
    graph = planted_partition(n, partitions, 0.3, 0.02, rng=random.Random(seed))
    session = Cluster.open(
        ClusterConfig(partitions=partitions, method=method, seed=seed),
        workload=small_workload(),
    )
    session.ingest(graph)
    return session, graph


class TestRetract:
    def test_retract_vertices_and_edges(self):
        session, graph = loaded_session()
        victim = next(iter(graph.vertices()))
        edge = next(
            e for e in session.graph.edges() if victim not in e
        )
        degree = session.graph.degree(victim)
        report = session.retract(vertices=[victim], edges=[edge])
        assert report.vertices_removed == 1
        assert report.edges_removed == 1
        assert report.cascaded_edges == degree
        assert not session.graph.has_vertex(victim)
        assert not session.graph.has_edge(*edge)
        assert session.partition_of(victim) is None
        assert session.is_complete  # still queryable
        assert session.query(LabelledGraph.path("ab")).matches >= 0

    def test_retract_validates_before_mutating(self):
        session, _ = loaded_session()
        vertices_before = session.graph.num_vertices
        edges_before = session.graph.num_edges
        with pytest.raises(SessionError):
            session.retract(vertices=[999_999])
        with pytest.raises(SessionError):
            session.retract(edges=[(0, 999_999)])
        assert session.graph.num_vertices == vertices_before
        assert session.graph.num_edges == edges_before

    def test_retract_frees_capacity_for_reingest(self):
        """Removal vacates real slots: an explicitly capped cluster can
        absorb replacement vertices after churn."""
        graph = LabelledGraph.from_edges(
            {i: "a" for i in range(8)}, [(i, i + 1) for i in range(7)]
        )
        session = Cluster.open(
            ClusterConfig(partitions=2, method="ldg", capacity=4, seed=0),
            workload=small_workload(),
        )
        session.ingest(graph)
        session.retract(vertices=[0, 1])
        addition = LabelledGraph.from_edges({100: "b", 101: "b"}, [(100, 101)])
        session.ingest(addition)
        assert session.is_complete
        assert session.graph.num_vertices == 8
        assert all(s <= 4 for s in session.assignment.sizes())

    def test_retract_on_restored_session_without_partitioner(self):
        session, _ = loaded_session()
        restored = Cluster.restore(session.snapshot())
        victim = next(iter(restored.graph.vertices()))
        report = restored.retract(vertices=[victim])
        assert report.vertices_removed == 1
        assert not restored.graph.has_vertex(victim)
        assert restored.is_complete

    def test_retract_empty_call_is_noop(self):
        session, _ = loaded_session()
        before = session.graph.num_vertices
        report = session.retract()
        assert report.vertices_removed == report.edges_removed == 0
        assert session.graph.num_vertices == before

    def test_ingest_report_counts_removals(self):
        session = Cluster.open(
            ClusterConfig(
                partitions=2, method="loom", window_size=16,
                motif_threshold=0.5, seed=1,
            )
        )
        report = session.ingest("churn", size=60)
        assert report.removals > 0
        assert report.vertices == 60
        assert report.events == report.vertices + report.edges + report.removals


class TestRebalance:
    def test_rebalance_improves_cut(self):
        """Scatter a community graph with hash, then let rebalancing pull
        neighbours together -- the cut must fall, capacity must hold."""
        session, _ = loaded_session(method="hash")
        report = session.rebalance()
        assert report.moved_vertices > 0
        assert report.cut_after < report.cut_before
        assert all(
            s <= session.assignment.capacity
            for s in session.assignment.sizes()
        )
        # The store's and the partitioner's assignments stay twins.
        assert (
            session.store.assignment.assigned()
            == session._partitioner.assignment.assigned()
        )

    def test_max_moves_budget_respected(self):
        session, _ = loaded_session(method="hash")
        report = session.rebalance(max_moves=3)
        assert report.moved_vertices <= 3
        assert report.max_moves == 3

    def test_zero_budget_moves_nothing(self):
        session, _ = loaded_session(method="hash")
        before = session.assignment.assigned()
        report = session.rebalance(max_moves=0)
        assert report.moved_vertices == 0
        assert session.assignment.assigned() == before

    def test_rebalance_deterministic(self):
        first, _ = loaded_session(method="hash")
        second, _ = loaded_session(method="hash")
        a = first.rebalance(max_moves=10)
        b = second.rebalance(max_moves=10)
        assert first.assignment.assigned() == second.assignment.assigned()
        assert a == b

    def test_rebalance_validates_arguments(self):
        session, _ = loaded_session()
        with pytest.raises(SessionError):
            session.rebalance(max_moves=-1)
        with pytest.raises(SessionError):
            session.rebalance(min_gain=0)

    def test_rebalance_absorbs_redundant_replicas(self):
        session, _ = loaded_session(method="hash")
        session.replicate(budget=20, executions=30)
        report = session.rebalance()
        # Any primary that migrated onto one of its replicas absorbed it.
        for vertex in session.graph.vertices():
            home = session.partition_of(vertex)
            assert home not in session.store.replicas_of(vertex)
        assert report.replicas_dropped >= 0

    def test_retract_then_rebalance_round_trip(self):
        session, graph = loaded_session(method="hash")
        victims = list(graph.vertices())[:5]
        session.retract(vertices=victims)
        report = session.rebalance()
        assert session.is_complete
        assert report.total_vertices == graph.num_vertices - 5
        restored = Cluster.restore(session.snapshot())
        assert restored.assignment.assigned() == session.assignment.assigned()
