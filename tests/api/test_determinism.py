"""Seed threading: equal seeds replay identically; the module-global
``random`` generator is never touched by any session command."""

import random

from repro.api import Cluster, ClusterConfig


def build_and_exercise(seed: int):
    session = Cluster.open(
        ClusterConfig(partitions=4, method="loom", window_size=32,
                      motif_threshold=0.4, seed=seed)
    )
    ingest = session.ingest("fraud", size=40)
    report = session.run_workload(executions=50)
    repartition = session.repartition(method="ldg")
    return session, ingest, report, repartition


class TestDeterminism:
    def test_same_seed_identical_reports(self):
        s1, ingest1, report1, repartition1 = build_and_exercise(11)
        s2, ingest2, report2, repartition2 = build_and_exercise(11)
        assert s1.assignment.assigned() == s2.assignment.assigned()
        assert ingest1.events == ingest2.events
        assert report1 == report2
        assert repartition1 == repartition2
        stats1, stats2 = s1.stats(), s2.stats()
        assert stats1.sizes == stats2.sizes
        assert stats1.cut_fraction == stats2.cut_fraction

    def test_different_seeds_differ_somewhere(self):
        _, _, report1, _ = build_and_exercise(11)
        _, _, report2, _ = build_and_exercise(12)
        # Different master seeds produce different graphs, so the reports
        # cannot coincide in every field.
        assert report1 != report2

    def test_global_random_state_untouched(self):
        random.seed(20260730)
        before = random.getstate()
        session, _, _, _ = build_and_exercise(3)
        session.query(session.workload.queries[0])
        session.replicate(budget=5, executions=10)
        session.snapshot()
        assert random.getstate() == before

    def test_explicit_rng_overrides_derived_seed(self):
        session1 = Cluster.open(
            ClusterConfig(partitions=4, method="loom", window_size=32,
                          motif_threshold=0.4, seed=0)
        )
        session1.ingest("fraud", size=40)
        r1 = session1.run_workload(executions=30, rng=random.Random(5))
        r2 = session1.run_workload(executions=30, rng=random.Random(5))
        assert r1 == r2
        r3 = session1.run_workload(executions=30, seed=123)
        r4 = session1.run_workload(executions=30, seed=123)
        assert r3 == r4
