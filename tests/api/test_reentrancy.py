"""Façade re-entrancy: the session command lock.

Two guarantees, tested separately:

* **Same-thread re-entry raises.**  A stats hook (or signal handler)
  calling back into the façade mid-command would deadlock on a plain
  lock and corrupt state without one; it now raises
  :class:`ConcurrentSessionError` immediately.
* **Cross-thread callers serialise.**  Two threads driving interleaved
  ingest/query/retract never interleave *inside* a command; the final
  store is byte-identical to replaying the commands serially in the
  order the lock admitted them (recorded by ``session.command_trace``).
"""

import threading
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Cluster, ClusterConfig, ConcurrentSessionError
from repro.graph.labelled import LabelledGraph
from repro.stream.events import EdgeArrival, VertexArrival

CONFIG = ClusterConfig(partitions=3, method="ldg", seed=7, batch_size=4)


def _label(vertex: int) -> str:
    return "a" if vertex % 2 == 0 else "b"


def _chain_events(vertices):
    """One op's stream: a fresh chain over ``vertices`` (no edges into
    older vertices, which a concurrent retract might have removed)."""
    events = [
        VertexArrival(v, _label(v), t) for t, v in enumerate(vertices)
    ]
    events.extend(
        EdgeArrival(u, v, len(vertices) + t)
        for t, (u, v) in enumerate(zip(vertices, vertices[1:]))
    )
    return events


def _pattern() -> LabelledGraph:
    graph = LabelledGraph()
    graph.add_vertex(0, "a")
    graph.add_vertex(1, "b")
    graph.add_edge(0, 1)
    return graph


def _seeded_session():
    """A session with enough resident state that queries are always
    legal, whatever the two threads have done so far."""
    session = Cluster.open(CONFIG)
    session.ingest(_chain_events(list(range(5000, 5008))))
    return session


class TestSameThreadReentry:
    def test_stats_hook_calling_query_raises(self):
        session = _seeded_session()
        caught: list[ConcurrentSessionError] = []

        def hook(stats):
            if caught:
                return
            try:
                session.query(_pattern())
            except ConcurrentSessionError as error:
                caught.append(error)

        session.ingest(_chain_events(list(range(10, 20))), stats_hooks=(hook,))
        assert caught, "re-entrant query inside ingest did not raise"
        assert "'query'" in str(caught[0])
        assert "'ingest'" in str(caught[0])
        # The lock was released on the way out: the façade still works.
        assert session.query(_pattern()).matches >= 0

    def test_reentry_propagates_and_releases_the_lock(self):
        session = _seeded_session()

        def hook(stats):
            session.stats()

        with pytest.raises(ConcurrentSessionError):
            session.ingest(
                _chain_events(list(range(30, 40))), stats_hooks=(hook,)
            )
        # Not poisoned: the next command acquires the lock normally.
        session.ingest(_chain_events(list(range(50, 54))))

    def test_close_is_exempt(self):
        """``close()`` must stay callable mid-command: repartition calls
        it while holding the lock, and signal handlers fire anywhere."""
        session = _seeded_session()

        def hook(stats):
            session.close()

        session.ingest(_chain_events(list(range(60, 64))), stats_hooks=(hook,))
        session.close()  # idempotent


@st.composite
def _programs(draw):
    """Two per-thread op lists over disjoint vertex namespaces; each
    retract targets a vertex its own thread ingested earlier, so every
    serialisation of the two programs is individually legal."""
    programs = []
    for thread in range(2):
        next_vertex = 1000 * (thread + 1)
        live: list[int] = []
        ops: list[tuple] = []
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            kind = draw(st.sampled_from(("ingest", "query", "retract")))
            if kind == "ingest":
                size = draw(st.integers(min_value=1, max_value=4))
                vertices = list(range(next_vertex, next_vertex + size))
                next_vertex += size
                live.extend(vertices)
                ops.append(("ingest", vertices))
            elif kind == "retract" and live:
                victim = draw(st.sampled_from(live))
                live.remove(victim)
                ops.append(("retract", victim))
            else:
                ops.append(("query", None))
        programs.append(ops)
    return programs


def _apply(session, op):
    kind, arg = op[0], op[1] if len(op) > 1 else None
    if kind == "ingest":
        session.ingest(_chain_events(arg))
    elif kind == "retract":
        session.retract(vertices=(arg,))
    else:
        session.query(_pattern())


class TestCrossThreadSerialisation:
    @settings(max_examples=8, deadline=None)
    @given(programs=_programs())
    def test_interleaved_threads_equal_the_serialised_order(self, programs):
        session = _seeded_session()
        session.command_trace = []
        idents: dict[int, int] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(2)

        def run(index: int, ops) -> None:
            idents[threading.get_ident()] = index
            barrier.wait()
            try:
                for op in ops:
                    _apply(session, op)
            except BaseException as error:  # noqa: BLE001 - reraised
                errors.append(error)

        threads = [
            threading.Thread(target=run, args=(index, ops))
            for index, ops in enumerate(programs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        trace = session.command_trace
        assert len(trace) == sum(len(ops) for ops in programs)

        # Replay the admitted order serially on a fresh session.
        replay = _seeded_session()
        queues = [deque(ops) for ops in programs]
        for name, ident in trace:
            op = queues[idents[ident]].popleft()
            assert op[0] == name
            _apply(replay, op)
        assert all(not queue for queue in queues)
        assert replay.store.export_columns() == session.store.export_columns()
        session.close()
        replay.close()
