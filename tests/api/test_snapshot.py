"""Snapshot / restore round-trip."""

import random

import pytest

from repro.api import SNAPSHOT_SCHEMA, Cluster, ClusterConfig
from repro.exceptions import SessionError
from repro.graph import LabelledGraph
from repro.stream.sources import stream_from_graph
from repro.workload import PatternQuery, Workload


def small_session():
    graph = LabelledGraph.cycle("ababab")
    for v, label in ((10, "c"), (11, "c")):
        graph.add_vertex(v, label)
    graph.add_edge(0, 10)
    graph.add_edge(3, 11)
    workload = Workload([PatternQuery("ab", LabelledGraph.path("ab"))])
    session = Cluster.open(
        ClusterConfig(partitions=2, method="ldg", capacity=8, seed=4),
        workload=workload,
    )
    session.ingest(graph)
    return session, graph, workload


class TestRoundTrip:
    def test_dict_round_trip(self):
        session, graph, workload = small_session()
        payload = session.snapshot()
        assert payload["schema"] == SNAPSHOT_SCHEMA
        restored = Cluster.restore(payload, workload=workload)
        assert restored.assignment.assigned() == session.assignment.assigned()
        assert set(restored.graph.vertices()) == set(graph.vertices())
        assert set(restored.graph.edges()) == set(session.graph.edges())
        for vertex in graph.vertices():
            assert restored.graph.label(vertex) == graph.label(vertex)
        # A restored session answers queries identically, immediately.
        query = PatternQuery("ab", LabelledGraph.path("ab"))
        assert restored.query(query) == session.query(query)

    def test_file_round_trip_and_stability(self, tmp_path):
        session, _, workload = small_session()
        target = tmp_path / "cluster.json"
        payload = session.snapshot(target)
        assert target.exists()
        restored = Cluster.restore(target, workload=workload)
        assert restored.snapshot() == payload

    def test_restored_session_can_ingest_more(self):
        session, _, workload = small_session()
        restored = Cluster.restore(session.snapshot(), workload=workload)
        extra = LabelledGraph.path("ab")
        mapping = {0: 20, 1: 21}
        fresh = LabelledGraph()
        for old, new in mapping.items():
            fresh.add_vertex(new, extra.label(old))
        fresh.add_edge(20, 21)
        restored.ingest(fresh)
        assert restored.is_complete
        assert restored.graph.num_vertices == session.graph.num_vertices + 2
        assert restored.partition_of(20) is not None

    def test_restored_session_can_repartition(self):
        session, _, workload = small_session()
        restored = Cluster.restore(session.snapshot(), workload=workload)
        report = restored.repartition(method="hash")
        assert report.method_after == "hash"
        assert restored.is_complete

    def test_bad_schema_rejected(self):
        session, _, _ = small_session()
        payload = session.snapshot()
        payload["schema"] = "something/else"
        with pytest.raises(SessionError, match="schema"):
            Cluster.restore(payload)

    def test_snapshot_requires_complete_assignment(self):
        session = Cluster.open(ClusterConfig(method="ldg"))
        with pytest.raises(SessionError):
            session.snapshot()

    def test_round_trip_after_removals(self):
        """The churn fix: a store that has had removals must round-trip
        -- tombstoned vertices and their edges stay gone on restore."""
        session, graph, workload = small_session()
        session.retract(vertices=[10], edges=[(0, 1)])
        payload = session.snapshot()
        vertex_ids = [v for v, _ in payload["graph"]["vertices"]]
        assert 10 not in vertex_ids
        assert [0, 10] not in payload["graph"]["edges"]
        assert all(v != 10 for v, _ in payload["assignment"])
        restored = Cluster.restore(payload, workload=workload)
        assert not restored.graph.has_vertex(10)
        assert not restored.graph.has_edge(0, 1)
        assert restored.is_complete
        assert restored.assignment.assigned() == session.assignment.assigned()
        # Restore-then-ingest still works on the churned state.
        addition = LabelledGraph.from_edges({30: "c"}, [])
        restored.ingest(addition)
        assert restored.is_complete

    def test_replicas_of_removed_vertex_do_not_resurrect(self):
        session, graph, workload = small_session()
        store = session.store
        victim = next(iter(graph.vertices()))
        other = (session.partition_of(victim) + 1) % 2
        assert store.add_replica(victim, other)
        session.retract(vertices=[victim])
        assert store.replicas_of(victim) == frozenset()
        assert store.total_replicas() == 0
        restored = Cluster.restore(session.snapshot(), workload=workload)
        assert restored.store.replicas_of(victim) == frozenset()
        assert not restored.graph.has_vertex(victim)

    def test_string_vertex_ids_survive(self):
        graph = LabelledGraph()
        for name, label in (("alice", "u"), ("bob", "u"), ("p1", "p")):
            graph.add_vertex(name, label)
        graph.add_edge("alice", "p1")
        graph.add_edge("bob", "p1")
        session = Cluster.open(
            ClusterConfig(partitions=2, method="hash", capacity=3, seed=0)
        )
        events = stream_from_graph(
            graph, ordering="natural", rng=random.Random(0)
        )
        session.ingest(events, graph=graph)
        restored = Cluster.restore(session.snapshot())
        assert restored.partition_of("alice") == session.partition_of("alice")
        assert restored.graph.label("bob") == "u"
