"""Session lifecycle: ingest → query → repartition, pinned against the
pre-redesign hand-wired glue (byte-identical assignments, identical match
sets and traversal ledgers)."""

import random

import pytest

from repro.api import Cluster, ClusterConfig
from repro.cluster import DistributedGraphStore, run_workload
from repro.cluster.executor import DistributedQueryExecutor
from repro.engine.pipeline import StreamingEngine, as_stream_partitioner
from repro.engine.registry import PartitionRequest, default_registry
from repro.exceptions import CapacityExceededError, SessionError
from repro.graph import LabelledGraph
from repro.graph.generators import erdos_renyi, plant_motifs
from repro.stream.sources import stream_from_graph
from repro.workload import PatternQuery, Workload


def motif_testbed(seed=0):
    rng = random.Random(seed)
    abc = LabelledGraph.path("abc")
    square = LabelledGraph.cycle("abab")
    graph = plant_motifs(
        [(abc, 20), (square, 12)],
        noise_vertices=50,
        noise_edge_probability=0.005,
        rng=rng,
    )
    workload = Workload(
        [PatternQuery("abc", abc, 3.0), PatternQuery("square", square, 1.0)]
    )
    return graph, workload


def legacy_glue(method, graph, events, *, k, workload, window_size,
                motif_threshold, seed):
    """The pre-redesign lifecycle, hand-wired exactly as callers used to."""
    spec = default_registry.resolve(method)
    request = PartitionRequest(
        graph=graph,
        events=events,
        k=k,
        workload=workload,
        window_size=window_size,
        motif_threshold=motif_threshold,
        seed=seed,
    )
    spec.check_request(request)
    partitioner = as_stream_partitioner(
        spec.build(request), k=k, capacity=request.resolved_capacity()
    )
    assignment = StreamingEngine(partitioner).run(events)
    return DistributedGraphStore(graph, assignment)


@pytest.fixture(scope="module")
def testbed():
    graph, workload = motif_testbed(3)
    events = stream_from_graph(graph, ordering="random", rng=random.Random(4))
    return graph, workload, events


class TestIngestEquivalence:
    @pytest.mark.parametrize("method", ["hash", "ldg", "fennel", "loom"])
    def test_assignments_byte_identical_to_legacy_glue(self, testbed, method):
        graph, workload, events = testbed
        legacy = legacy_glue(
            method, graph, events, k=8, workload=workload,
            window_size=64, motif_threshold=0.2, seed=5,
        )
        session = Cluster.open(
            ClusterConfig(partitions=8, method=method, window_size=64,
                          motif_threshold=0.2, seed=5),
            workload=workload,
        )
        session.ingest(events, graph=graph)
        assert session.assignment.assigned() == legacy.assignment.assigned()

    def test_match_sets_and_ledgers_identical_to_legacy_glue(self, testbed):
        graph, workload, events = testbed
        legacy = legacy_glue(
            "loom", graph, events, k=8, workload=workload,
            window_size=64, motif_threshold=0.2, seed=5,
        )
        session = Cluster.open(
            ClusterConfig(partitions=8, method="loom", window_size=64,
                          motif_threshold=0.2, seed=5),
            workload=workload,
        )
        session.ingest(events, graph=graph)
        executor = DistributedQueryExecutor(legacy)
        for query in workload:
            expected = executor.execute(query)
            result = session.query(query)
            assert result.matches == expected.matches
            assert result.local_traversals == expected.ledger.local
            assert result.remote_traversals == expected.ledger.remote
        expected_stats = run_workload(
            legacy, workload, executions=60, rng=random.Random(9)
        )
        report = session.run_workload(executions=60, rng=random.Random(9))
        assert report.matches == expected_stats.matches
        assert report.remote_probability == expected_stats.remote_probability
        assert report.fully_local_rate == expected_stats.fully_local_rate

    def test_ingest_report_counts_the_stream(self, testbed):
        graph, workload, events = testbed
        session = Cluster.open(
            ClusterConfig(partitions=4, method="ldg", seed=1)
        )
        report = session.ingest(events, graph=graph)
        assert report.events == len(events)
        assert report.vertices == graph.num_vertices
        assert report.edges == len(events) - graph.num_vertices
        assert report.assigned_total == graph.num_vertices
        assert session.is_complete

    def test_offline_method_through_the_facade(self, testbed):
        graph, workload, events = testbed
        session = Cluster.open(
            ClusterConfig(partitions=4, method="offline", seed=2)
        )
        session.ingest(events, graph=graph)
        assert session.is_complete
        assert session.stats().cut_fraction is not None

    def test_derived_capacity_grows_across_ingests(self):
        first = erdos_renyi(20, 0.2, rng=random.Random(1))
        second = LabelledGraph()
        for v in range(100, 125):
            second.add_vertex(v, "a")
            if v > 100:
                second.add_edge(v - 1, v)
        session = Cluster.open(ClusterConfig(partitions=4, method="ldg"))
        session.ingest(first)
        small = session.assignment.capacity
        session.ingest(second)
        assert session.is_complete
        assert session.assignment.capacity > small
        assert session.graph.num_vertices == 45
        # The restored session keeps growing the same way.
        restored = Cluster.restore(session.snapshot())
        third = LabelledGraph()
        for v in range(200, 230):
            third.add_vertex(v, "b")
            if v > 200:
                third.add_edge(v - 1, v)
        restored.ingest(third)
        assert restored.is_complete
        assert restored.graph.num_vertices == 75

    def test_explicit_capacity_stays_hard(self):
        graph = erdos_renyi(20, 0.2, rng=random.Random(1))
        session = Cluster.open(
            ClusterConfig(partitions=2, method="ldg", capacity=10)
        )
        session.ingest(graph)
        bigger = erdos_renyi(20, 0.2, rng=random.Random(2))
        relabelled = LabelledGraph()
        for v in bigger.vertices():
            relabelled.add_vertex(v + 100, bigger.label(v))
        for u, v in bigger.edges():
            relabelled.add_edge(u + 100, v + 100)
        with pytest.raises(CapacityExceededError):
            session.ingest(relabelled)

    def test_offline_reingest_drops_stale_replicas(self, testbed):
        graph, workload, events = testbed
        session = Cluster.open(
            ClusterConfig(partitions=4, method="offline", seed=2),
            workload=workload,
        )
        session.ingest(events, graph=graph)
        session.replicate(budget=6, executions=20)
        assert session.store.total_replicas() > 0
        extra = LabelledGraph()
        for v in range(900, 910):
            extra.add_vertex(v, "a")
            if v > 900:
                extra.add_edge(v - 1, v)
        session.ingest(extra)
        assert session.is_complete
        # Replicas were provisioned under the discarded placement.
        assert session.store.total_replicas() == 0
        assert session.stats().replication_factor == 1.0


class TestSessionState:
    def test_query_before_ingest_raises(self):
        session = Cluster.open(ClusterConfig(method="ldg"))
        with pytest.raises(SessionError, match="nothing ingested"):
            session.query(LabelledGraph.path("ab"))

    def test_run_workload_without_workload_raises(self, testbed):
        graph, _, events = testbed
        session = Cluster.open(ClusterConfig(method="ldg"))
        session.ingest(events, graph=graph)
        with pytest.raises(SessionError, match="no workload"):
            session.run_workload()

    def test_workload_needing_method_requires_workload(self, testbed):
        graph, _, events = testbed
        session = Cluster.open(ClusterConfig(method="loom"))
        with pytest.raises(ValueError, match="needs a workload"):
            session.ingest(events, graph=graph)

    def test_stats_snapshot(self, testbed):
        graph, workload, events = testbed
        session = Cluster.open(
            ClusterConfig(partitions=8, method="loom", window_size=64,
                          motif_threshold=0.2, seed=5),
            workload=workload,
        )
        session.ingest(events, graph=graph)
        stats = session.stats()
        assert stats.vertices == graph.num_vertices
        assert stats.edges == graph.num_edges
        assert stats.assigned == graph.num_vertices
        assert sum(stats.sizes) == graph.num_vertices
        assert 0.0 <= stats.cut_fraction <= 1.0
        assert stats.engine_events == len(events)
        assert stats.partitioner_counters is not None
        assert "groups" in stats.partitioner_counters
        assert stats.matcher_counters is not None
        payload = stats.as_dict()
        assert payload["method"] == "loom"

    def test_dataset_ingest_adopts_bundled_workload(self):
        session = Cluster.open(
            ClusterConfig(partitions=4, method="loom", window_size=32,
                          motif_threshold=0.4, seed=6)
        )
        report = session.ingest("fraud", size=40)
        assert session.workload is not None
        assert report.vertices == session.graph.num_vertices
        assert session.run_workload(executions=20).executions == 20

    def test_unknown_dataset_raises(self):
        session = Cluster.open(ClusterConfig(method="ldg"))
        with pytest.raises(SessionError, match="unknown dataset"):
            session.ingest("imaginary")


class TestRepartition:
    def test_repartition_matches_fresh_legacy_run(self, testbed):
        graph, workload, events = testbed
        session = Cluster.open(
            ClusterConfig(partitions=8, method="loom", window_size=64,
                          motif_threshold=0.2, seed=5, ordering="random"),
            workload=workload,
        )
        session.ingest(events, graph=graph)
        resident = session.graph
        report = session.repartition(method="ldg", seed=77)
        expected_events = stream_from_graph(
            resident, ordering="random", rng=random.Random(77)
        )
        legacy = legacy_glue(
            "ldg", resident, expected_events, k=8, workload=workload,
            window_size=64, motif_threshold=0.2, seed=5,
        )
        assert session.assignment.assigned() == legacy.assignment.assigned()
        assert report.method_before == "loom"
        assert report.method_after == "ldg"
        assert session.config.method == "ldg"
        assert report.total_vertices == graph.num_vertices
        assert 0.0 <= report.moved_fraction <= 1.0
        assert report.cut_after == session.stats().cut_fraction

    def test_repartition_keeps_session_queryable(self, testbed):
        graph, workload, events = testbed
        session = Cluster.open(
            ClusterConfig(partitions=8, method="hash", seed=5),
            workload=workload,
        )
        session.ingest(events, graph=graph)
        before = session.run_workload(executions=40)
        session.repartition(method="loom", window_size=64,
                            motif_threshold=0.2)
        after = session.run_workload(executions=40)
        assert after.executions == before.executions
        assert session.is_complete


class TestReplicate:
    def test_replication_lowers_or_holds_remote_probability(self, testbed):
        graph, workload, events = testbed
        session = Cluster.open(
            ClusterConfig(partitions=8, method="hash", seed=5),
            workload=workload,
        )
        session.ingest(events, graph=graph)
        report = session.replicate(budget=10, executions=30)
        assert report.replicas_added <= 10
        assert (
            report.remote_probability_after
            <= report.remote_probability_before
        )
        assert session.stats().replication_factor >= 1.0
