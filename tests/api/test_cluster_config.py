"""ClusterConfig validation and round-trip."""

import pytest

from repro.api import ClusterConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_are_valid(self):
        config = ClusterConfig()
        assert config.partitions == 4
        assert config.method == "loom"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"partitions": 0},
            {"capacity": 0},
            {"slack": 0.9},
            {"window_size": 0},
            {"motif_threshold": 0.0},
            {"batch_size": 0},
            {"ordering": "sideways"},
            {"replication_budget": -1},
            {"method": "definitely-not-registered"},
            {"remote_cost": 0.5, "local_cost": 1.0},
            {"local_cost": -1.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterConfig(**kwargs)

    def test_unknown_method_message_lists_known_methods(self):
        with pytest.raises(ConfigurationError, match="loom"):
            ClusterConfig(method="nope")

    def test_configs_are_immutable(self):
        config = ClusterConfig()
        with pytest.raises(AttributeError):
            config.partitions = 8


class TestRoundTrip:
    def test_as_dict_from_dict(self):
        config = ClusterConfig(
            partitions=8,
            method="ldg",
            capacity=40,
            window_size=32,
            ordering="bfs",
            seed=9,
            method_options={"x": 1},
        )
        rebuilt = ClusterConfig.from_dict(config.as_dict())
        assert rebuilt == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown config"):
            ClusterConfig.from_dict({"partitions": 2, "bogus": True})

    def test_latency_model_reflects_costs(self):
        config = ClusterConfig(local_cost=2.0, remote_cost=50.0)
        model = config.latency_model()
        assert model.cost(1, 1) == 52.0


class TestWorkerConfig:
    def test_defaults_are_serial(self):
        from repro.api import WorkerConfig

        config = ClusterConfig()
        assert config.worker == WorkerConfig()
        assert config.worker.count == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"count": 0},
            {"start_method": "teleport"},
            {"request_timeout": 0.0},
        ],
    )
    def test_bad_worker_values_rejected(self, kwargs):
        from repro.api import WorkerConfig

        with pytest.raises(ConfigurationError):
            WorkerConfig(**kwargs)

    def test_round_trips_through_cluster_config(self):
        from repro.api import WorkerConfig

        config = ClusterConfig(
            partitions=8,
            worker=WorkerConfig(count=4, start_method="fork",
                                request_timeout=5.0, fallback_serial=False),
        )
        payload = config.as_dict()
        assert payload["worker"] == {
            "count": 4,
            "start_method": "fork",
            "request_timeout": 5.0,
            "fallback_serial": False,
            "refresh_mode": "delta",
            "shared_memory": True,
            "max_delta_events": 8192,
            "max_retries": 2,
            "retry_backoff": 0.05,
            "fault_plan": None,
        }
        rebuilt = ClusterConfig.from_dict(payload)
        assert rebuilt == config
        assert isinstance(rebuilt.worker, WorkerConfig)

    def test_dict_spelling_coerced(self):
        config = ClusterConfig(worker={"count": 2})
        assert config.worker.count == 2

    def test_unknown_worker_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown worker"):
            ClusterConfig(worker={"count": 2, "threads": 8})

    def test_non_config_worker_rejected(self):
        with pytest.raises(ConfigurationError, match="WorkerConfig"):
            ClusterConfig(worker=4)
