"""Tests for labelled sub-graph isomorphism, including the paper's own example.

Figure 1 of the paper gives a graph G (8 vertices, labels a,b,c,d) and three
queries; the text states the answer to q1 is the sub-graph over vertices
{1, 2, 5, 6}.  We reproduce that exact check here.
"""


from repro.graph import (
    LabelledGraph,
    count_embeddings,
    find_embeddings,
    find_matches,
    is_isomorphic,
)
from repro.graph.isomorphism import has_embedding


def figure1_graph() -> LabelledGraph:
    labels = {1: "a", 2: "b", 3: "c", 4: "d", 5: "b", 6: "a", 7: "d", 8: "c"}
    edges = [(1, 2), (2, 3), (3, 4), (1, 5), (2, 6), (5, 6), (6, 7), (3, 8), (7, 8)]
    return LabelledGraph.from_edges(labels, edges)


class TestEmbeddings:
    def test_empty_pattern_matches_once(self):
        assert count_embeddings(LabelledGraph(), figure1_graph()) == 1

    def test_single_vertex_pattern(self):
        pattern = LabelledGraph.from_edges({0: "a"})
        assert count_embeddings(pattern, figure1_graph()) == 2  # vertices 1, 6

    def test_label_mismatch_fails(self):
        pattern = LabelledGraph.from_edges({0: "z"})
        assert count_embeddings(pattern, figure1_graph()) == 0

    def test_pattern_larger_than_target(self):
        pattern = LabelledGraph.path("abcabc")
        assert not has_embedding(pattern, LabelledGraph.path("ab"))

    def test_edge_preservation_required(self):
        pattern = LabelledGraph.from_edges({0: "a", 1: "d"}, [(0, 1)])
        target = LabelledGraph.from_edges({0: "a", 1: "d"})  # no edge
        assert not has_embedding(pattern, target)

    def test_injective_mapping(self):
        pattern = LabelledGraph.from_edges({0: "a", 1: "a"}, [(0, 1)])
        target = LabelledGraph.from_edges({0: "a"})
        assert not has_embedding(pattern, target)

    def test_max_matches_caps_enumeration(self):
        pattern = LabelledGraph.from_edges({0: "a"})
        results = list(find_embeddings(pattern, figure1_graph(), max_matches=1))
        assert len(results) == 1

    def test_embeddings_are_valid(self):
        pattern = LabelledGraph.path("abc")
        target = figure1_graph()
        for mapping in find_embeddings(pattern, target):
            assert len(set(mapping.values())) == len(mapping)
            for pv in pattern.vertices():
                assert pattern.label(pv) == target.label(mapping[pv])
            for u, v in pattern.edges():
                assert target.has_edge(mapping[u], mapping[v])


class TestPaperFigure1:
    def test_q1_square_answer_is_1256(self):
        # q1: cycle a-b-a-b (square with alternating labels).
        q1 = LabelledGraph.cycle("abab")
        matches = find_matches(q1, figure1_graph())
        assert len(matches) == 1
        assert set(matches[0].vertices()) == {1, 2, 5, 6}

    def test_q2_path_abc(self):
        q2 = LabelledGraph.path("abc")
        matches = find_matches(q2, figure1_graph())
        matched_sets = {frozenset(m.vertices()) for m in matches}
        assert frozenset({1, 2, 3}) in matched_sets
        assert frozenset({6, 2, 3}) in matched_sets

    def test_q3_path_abcd(self):
        q3 = LabelledGraph.path("abcd")
        matches = find_matches(q3, figure1_graph())
        assert matches
        for match in matches:
            assert sorted(
                match.label(v) for v in match.vertices()
            ) == ["a", "b", "c", "d"]

    def test_automorphic_embeddings_deduplicated(self):
        q1 = LabelledGraph.cycle("abab")
        # The square has several automorphisms but only one matched sub-graph.
        assert count_embeddings(q1, figure1_graph()) > 1
        assert len(find_matches(q1, figure1_graph())) == 1


class TestIsomorphism:
    def test_paths_isomorphic_reversed(self):
        assert is_isomorphic(LabelledGraph.path("abc"), LabelledGraph.path("cba"))

    def test_different_labels_not_isomorphic(self):
        assert not is_isomorphic(LabelledGraph.path("abc"), LabelledGraph.path("abb"))

    def test_path_not_isomorphic_to_cycle(self):
        assert not is_isomorphic(
            LabelledGraph.path("abca"), LabelledGraph.cycle("abca")
        )

    def test_relabelled_vertex_ids_isomorphic(self):
        a = LabelledGraph.from_edges({1: "a", 2: "b", 3: "c"}, [(1, 2), (2, 3)])
        b = LabelledGraph.from_edges(
            {"x": "c", "y": "b", "z": "a"}, [("x", "y"), ("y", "z")]
        )
        assert is_isomorphic(a, b)

    def test_star_vs_path_same_histogram(self):
        star = LabelledGraph.star("b", "aba")
        path = LabelledGraph.path("abab")
        assert star.label_histogram() == path.label_histogram()
        assert not is_isomorphic(star, path)
