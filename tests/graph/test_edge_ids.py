"""Packed integer edge ids on the indexed adjacency core."""

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph.labelled import LabelledGraph, edge_key


def build():
    graph = LabelledGraph()
    for vertex, label in [(1, "a"), (2, "b"), ("x", "c")]:
        graph.add_vertex(vertex, label)
    graph.add_edge(1, 2)
    graph.add_edge(2, "x")
    return graph


def test_edge_id_symmetric_and_distinct():
    graph = build()
    assert graph.edge_id(1, 2) == graph.edge_id(2, 1)
    assert graph.edge_id(1, 2) != graph.edge_id(2, "x")


def test_edge_from_id_round_trips_to_canonical_tuple():
    graph = build()
    for u, v in [(1, 2), (2, "x")]:
        assert graph.edge_from_id(graph.edge_id(u, v)) == edge_key(u, v)


def test_edge_id_requires_live_endpoints():
    graph = build()
    with pytest.raises(VertexNotFoundError):
        graph.edge_id(1, 99)


def test_edge_id_valid_for_nonexistent_edge_between_live_vertices():
    # The matcher probes candidate edges before they exist in the graph.
    graph = build()
    eid = graph.edge_id(1, "x")
    assert graph.edge_from_id(eid) == edge_key(1, "x")


def test_slot_reuse_changes_nothing_for_live_matches():
    """An edge id stays decodable while both endpoints live, and a
    recycled slot mints ids for the new vertex, not the departed one."""
    graph = build()
    old = graph.edge_id(1, 2)
    graph.remove_vertex("x")
    graph.add_vertex("y", "d")      # recycles x's slot
    graph.add_edge(2, "y")
    assert graph.edge_from_id(old) == edge_key(1, 2)
    assert graph.edge_from_id(graph.edge_id(2, "y")) == edge_key(2, "y")
