"""Unit tests for the core LabelledGraph data structure."""

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    VertexNotFoundError,
)
from repro.graph import LabelledGraph, edge_key


class TestVertices:
    def test_add_vertex_returns_id(self):
        g = LabelledGraph()
        assert g.add_vertex(1, "a") == 1

    def test_add_vertex_stores_label(self):
        g = LabelledGraph()
        g.add_vertex(1, "a")
        assert g.label(1) == "a"

    def test_readding_same_label_is_noop(self):
        g = LabelledGraph()
        g.add_vertex(1, "a")
        g.add_vertex(1, "a")
        assert g.num_vertices == 1

    def test_readding_with_different_label_raises(self):
        g = LabelledGraph()
        g.add_vertex(1, "a")
        with pytest.raises(GraphError):
            g.add_vertex(1, "b")

    def test_label_of_missing_vertex_raises(self):
        g = LabelledGraph()
        with pytest.raises(VertexNotFoundError):
            g.label(99)

    def test_remove_vertex_removes_incident_edges(self):
        g = LabelledGraph.path("abc")
        g.remove_vertex(1)
        assert g.num_edges == 0
        assert g.num_vertices == 2

    def test_remove_missing_vertex_raises(self):
        g = LabelledGraph()
        with pytest.raises(VertexNotFoundError):
            g.remove_vertex(0)

    def test_string_vertex_ids_supported(self):
        g = LabelledGraph()
        g.add_vertex("alice", "user")
        g.add_vertex("p1", "post")
        g.add_edge("alice", "p1")
        assert g.has_edge("p1", "alice")

    def test_vertices_with_label(self):
        g = LabelledGraph.from_edges({1: "a", 2: "b", 3: "a"})
        assert g.vertices_with_label("a") == [1, 3]

    def test_labels_alphabet(self):
        g = LabelledGraph.from_edges({1: "a", 2: "b", 3: "a"})
        assert g.labels() == {"a", "b"}

    def test_contains_and_iter(self):
        g = LabelledGraph.from_edges({1: "a", 2: "b"})
        assert 1 in g
        assert 3 not in g
        assert sorted(g) == [1, 2]


class TestEdges:
    def test_add_edge_both_directions_visible(self):
        g = LabelledGraph.from_edges({1: "a", 2: "b"}, [(1, 2)])
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)

    def test_add_edge_missing_endpoint_raises(self):
        g = LabelledGraph.from_edges({1: "a"})
        with pytest.raises(VertexNotFoundError):
            g.add_edge(1, 2)

    def test_self_loop_rejected(self):
        g = LabelledGraph.from_edges({1: "a"})
        with pytest.raises(GraphError):
            g.add_edge(1, 1)

    def test_duplicate_edge_is_noop(self):
        g = LabelledGraph.from_edges({1: "a", 2: "b"}, [(1, 2)])
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_remove_edge(self):
        g = LabelledGraph.from_edges({1: "a", 2: "b"}, [(1, 2)])
        g.remove_edge(2, 1)
        assert g.num_edges == 0
        assert not g.has_edge(1, 2)

    def test_remove_missing_edge_raises(self):
        g = LabelledGraph.from_edges({1: "a", 2: "b"})
        with pytest.raises(EdgeNotFoundError):
            g.remove_edge(1, 2)

    def test_edges_enumerated_once(self):
        g = LabelledGraph.path("abcd")
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_degree(self):
        g = LabelledGraph.star("a", "bbb")
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_neighbours_snapshot_is_immutable(self):
        g = LabelledGraph.path("ab")
        snapshot = g.neighbours(0)
        assert snapshot == frozenset({1})
        with pytest.raises(AttributeError):
            snapshot.add(5)  # type: ignore[attr-defined]

    def test_edge_key_symmetric(self):
        assert edge_key(2, 1) == edge_key(1, 2) == (1, 2)

    def test_edge_key_mixed_types(self):
        assert edge_key("x", 1) == edge_key(1, "x")


class TestConstructors:
    def test_path_shape(self):
        g = LabelledGraph.path("abc")
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert [g.label(v) for v in sorted(g.vertices())] == ["a", "b", "c"]

    def test_cycle_shape(self):
        g = LabelledGraph.cycle("abab")
        assert g.num_edges == 4
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small_raises(self):
        with pytest.raises(GraphError):
            LabelledGraph.cycle("ab")

    def test_star_shape(self):
        g = LabelledGraph.star("a", "bcd")
        assert g.degree(0) == 3
        assert {g.label(v) for v in g.neighbours(0)} == {"b", "c", "d"}

    def test_start_id_offsets_vertices(self):
        g = LabelledGraph.path("ab", start_id=10)
        assert sorted(g.vertices()) == [10, 11]

    def test_from_edges_roundtrip(self):
        labels = {1: "a", 2: "b", 3: "c"}
        g = LabelledGraph.from_edges(labels, [(1, 2), (2, 3)])
        assert g.vertex_labels() == labels
        assert g.num_edges == 2


class TestCopyAndEquality:
    def test_copy_is_independent(self):
        g = LabelledGraph.path("abc")
        clone = g.copy()
        clone.add_vertex(99, "z")
        clone.add_edge(0, 2)
        assert not g.has_vertex(99)
        assert not g.has_edge(0, 2)

    def test_structural_equality(self):
        a = LabelledGraph.path("abc")
        b = LabelledGraph.path("abc")
        assert a == b

    def test_inequality_on_labels(self):
        assert LabelledGraph.path("abc") != LabelledGraph.path("abd")

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(LabelledGraph())

    def test_edge_signature_key_ignores_insertion_order(self):
        a = LabelledGraph.from_edges({1: "a", 2: "b"}, [(1, 2)])
        b = LabelledGraph.from_edges({2: "b", 1: "a"}, [(2, 1)])
        assert a.edge_signature_key() == b.edge_signature_key()


class TestDerivedStructure:
    def test_label_histogram(self):
        g = LabelledGraph.from_edges({1: "a", 2: "a", 3: "b"})
        assert g.label_histogram() == {"a": 2, "b": 1}

    def test_degree_histogram(self):
        g = LabelledGraph.star("a", "bb")
        assert g.degree_histogram() == {2: 1, 1: 2}

    def test_density_bounds(self):
        empty = LabelledGraph()
        assert empty.density() == 0.0
        pair = LabelledGraph.path("ab")
        assert pair.density() == 1.0

    def test_repr_mentions_sizes(self):
        g = LabelledGraph.path("ab")
        assert "|V|=2" in repr(g)
        assert "|E|=1" in repr(g)
