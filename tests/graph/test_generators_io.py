"""Tests for synthetic generators and serialisation round-trips."""

import random

import pytest

from repro.exceptions import GraphError
from repro.graph import LabelledGraph, is_connected
from repro.graph.generators import (
    barabasi_albert,
    erdos_renyi,
    grid,
    plant_motifs,
    planted_partition,
    random_tree,
    watts_strogatz,
)
from repro.graph.io import (
    from_dict,
    from_edge_list,
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
    to_dict,
    to_edge_list,
)
from repro.graph.isomorphism import count_embeddings


class TestErdosRenyi:
    def test_sizes(self):
        g = erdos_renyi(50, 0.1, rng=random.Random(1))
        assert g.num_vertices == 50

    def test_p_zero_no_edges(self):
        g = erdos_renyi(30, 0.0, rng=random.Random(1))
        assert g.num_edges == 0

    def test_p_one_complete(self):
        g = erdos_renyi(10, 1.0, rng=random.Random(1))
        assert g.num_edges == 45

    def test_edge_count_near_expectation(self):
        n, p = 200, 0.05
        g = erdos_renyi(n, p, rng=random.Random(7))
        expected = p * n * (n - 1) / 2
        assert 0.7 * expected < g.num_edges < 1.3 * expected

    def test_seed_reproducible(self):
        a = erdos_renyi(40, 0.1, rng=random.Random(5))
        b = erdos_renyi(40, 0.1, rng=random.Random(5))
        assert a == b

    def test_bad_p_raises(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5, rng=random.Random(0))


class TestBarabasiAlbert:
    def test_sizes(self):
        g = barabasi_albert(100, 2, rng=random.Random(2))
        assert g.num_vertices == 100
        # Seed clique C(3,2)=3 edges + 97 * 2.
        assert g.num_edges == 3 + 97 * 2

    def test_connected(self):
        assert is_connected(barabasi_albert(60, 1, rng=random.Random(3)))

    def test_hub_formation(self):
        g = barabasi_albert(300, 2, rng=random.Random(4))
        max_degree = max(g.degree(v) for v in g.vertices())
        assert max_degree > 10  # power-law tail produces hubs

    def test_too_few_vertices_raises(self):
        with pytest.raises(GraphError):
            barabasi_albert(2, 2, rng=random.Random(0))


class TestWattsStrogatz:
    def test_degree_sum_preserved(self):
        g = watts_strogatz(40, 4, 0.2, rng=random.Random(5))
        assert g.num_edges == 40 * 4 // 2

    def test_beta_zero_is_lattice(self):
        g = watts_strogatz(20, 4, 0.0, rng=random.Random(5))
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_odd_k_raises(self):
        with pytest.raises(GraphError):
            watts_strogatz(20, 3, 0.1, rng=random.Random(0))


class TestPlantedPartition:
    def test_community_labels_dominate(self):
        g = planted_partition(
            120, 4, 0.3, 0.01, rng=random.Random(6), label_scheme="community"
        )
        # Block i has home label alphabet[i % 4]; at 80% bias, home labels
        # should be clear majorities.
        from repro.graph.generators import DEFAULT_ALPHABET

        home_hits = sum(
            1
            for v in g.vertices()
            if g.label(v) == DEFAULT_ALPHABET[v % 4]
        )
        assert home_hits > 0.6 * g.num_vertices

    def test_intra_edges_dominate(self):
        g = planted_partition(100, 4, 0.4, 0.01, rng=random.Random(8))
        intra = sum(1 for u, v in g.edges() if u % 4 == v % 4)
        assert intra > g.num_edges / 2

    def test_invalid_probabilities_raise(self):
        with pytest.raises(GraphError):
            planted_partition(10, 2, 0.1, 0.5, rng=random.Random(0))


class TestGridTreeMotifs:
    def test_grid_shape(self):
        g = grid(4, 5)
        assert g.num_vertices == 20
        assert g.num_edges == 4 * 4 + 3 * 5  # horizontal + vertical

    def test_tree_edge_count(self):
        g = random_tree(30, rng=random.Random(9))
        assert g.num_edges == 29
        assert is_connected(g)

    def test_plant_motifs_instances_found(self):
        motif = LabelledGraph.path("abc")
        g = plant_motifs([(motif, 5)], rng=random.Random(10))
        # Each planted instance is an exact copy; bridges may add more
        # occurrences but never remove the planted ones.
        assert count_embeddings(motif, g) >= 5

    def test_plant_motifs_connected_via_bridges(self):
        motif = LabelledGraph.path("ab")
        g = plant_motifs([(motif, 4)], rng=random.Random(11))
        assert is_connected(g)

    def test_plant_motifs_with_noise(self):
        motif = LabelledGraph.path("ab")
        g = plant_motifs(
            [(motif, 3)],
            noise_vertices=10,
            noise_edge_probability=0.1,
            rng=random.Random(12),
        )
        assert g.num_vertices == 3 * 2 + 10

    def test_plant_motifs_empty_raises(self):
        with pytest.raises(GraphError):
            plant_motifs([], rng=random.Random(0))


class TestIO:
    def roundtrip_graph(self) -> LabelledGraph:
        return LabelledGraph.from_edges(
            {1: "a", 2: "b", "x": "c"}, [(1, 2), (2, "x")]
        )

    def test_edge_list_roundtrip(self):
        g = self.roundtrip_graph()
        assert from_edge_list(to_edge_list(g)) == g

    def test_edge_list_files(self, tmp_path):
        g = self.roundtrip_graph()
        path = tmp_path / "graph.txt"
        save_edge_list(g, path)
        assert load_edge_list(path) == g

    def test_edge_list_bad_line_raises(self):
        with pytest.raises(GraphError):
            from_edge_list("v 1 a\nnot-a-line\n")

    def test_edge_list_skips_comments_and_blanks(self):
        g = from_edge_list("# header\n\nv 1 a\nv 2 b\ne 1 2\n")
        assert g.num_edges == 1

    def test_json_roundtrip(self):
        g = self.roundtrip_graph()
        assert from_dict(to_dict(g)) == g

    def test_json_files(self, tmp_path):
        g = self.roundtrip_graph()
        path = tmp_path / "graph.json"
        save_json(g, path)
        assert load_json(path) == g

    def test_generated_graph_survives_roundtrip(self):
        g = erdos_renyi(25, 0.2, rng=random.Random(13))
        assert from_edge_list(to_edge_list(g)) == g
