"""Tests for traversal orders, connectivity helpers and sub-graph views."""

import random

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph import (
    LabelledGraph,
    bfs_order,
    connected_components,
    dfs_order,
    edge_subgraph,
    induced_subgraph,
    is_connected,
    union,
)
from repro.graph.traversal import component_of, edges_in_order, triangles_through


def two_component_graph() -> LabelledGraph:
    g = LabelledGraph.path("abc")            # vertices 0,1,2
    other = LabelledGraph.path("dd", start_id=10)
    for v in other.vertices():
        g.add_vertex(v, other.label(v))
    for u, v in other.edges():
        g.add_edge(u, v)
    return g


class TestSearchOrders:
    def test_bfs_visits_everything(self):
        g = two_component_graph()
        assert sorted(bfs_order(g)) == [0, 1, 2, 10, 11]

    def test_bfs_layers_before_depth(self):
        g = LabelledGraph.star("a", "bbb")
        order = bfs_order(g, start=0)
        assert order[0] == 0
        assert set(order[1:]) == {1, 2, 3}

    def test_dfs_goes_deep_first(self):
        g = LabelledGraph.path("abcd")
        order = dfs_order(g, start=0)
        assert order == [0, 1, 2, 3]

    def test_missing_start_raises(self):
        with pytest.raises(VertexNotFoundError):
            bfs_order(LabelledGraph(), start=7)

    def test_rng_shuffles_but_still_covers(self):
        g = two_component_graph()
        order = bfs_order(g, rng=random.Random(3))
        assert sorted(order) == [0, 1, 2, 10, 11]

    def test_deterministic_without_rng(self):
        g = two_component_graph()
        assert bfs_order(g) == bfs_order(g)


class TestConnectivity:
    def test_components_largest_first(self):
        g = two_component_graph()
        components = connected_components(g)
        assert [len(c) for c in components] == [3, 2]

    def test_is_connected_true(self):
        assert is_connected(LabelledGraph.cycle("abc"))

    def test_is_connected_false(self):
        assert not is_connected(two_component_graph())

    def test_empty_graph_is_connected(self):
        assert is_connected(LabelledGraph())

    def test_component_of(self):
        g = two_component_graph()
        assert component_of(g, 10) == {10, 11}

    def test_triangles_through(self):
        g = LabelledGraph.cycle("abc")
        assert triangles_through(g, 0) == 1
        path = LabelledGraph.path("abc")
        assert triangles_through(path, 1) == 0

    def test_edges_in_order_matches_vertex_positions(self):
        g = LabelledGraph.cycle("abc")
        order = [2, 0, 1]
        arrivals = list(edges_in_order(g, order))
        # Edge appears when its later endpoint arrives.
        assert arrivals == [(2, 0), (2, 1), (0, 1)] or arrivals == [
            (2, 0),
            (0, 1),
            (2, 1),
        ]
        assert len(arrivals) == g.num_edges


class TestViews:
    def test_induced_subgraph_keeps_internal_edges(self):
        g = LabelledGraph.cycle("abcd")
        sub = induced_subgraph(g, [0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2

    def test_induced_subgraph_missing_vertex_raises(self):
        g = LabelledGraph.path("ab")
        with pytest.raises(VertexNotFoundError):
            induced_subgraph(g, [0, 99])

    def test_edge_subgraph_not_induced(self):
        g = LabelledGraph.cycle("abc")
        sub = edge_subgraph(g, [(0, 1), (1, 2)])
        assert sub.num_edges == 2          # (0,2) deliberately excluded
        assert sub.num_vertices == 3

    def test_union_merges_overlapping_matches(self):
        g = LabelledGraph.path("abcb")
        left = edge_subgraph(g, [(0, 1), (1, 2)])
        right = edge_subgraph(g, [(1, 2), (2, 3)])
        merged = union([left, right])
        assert merged.num_vertices == 4
        assert merged.num_edges == 3

    def test_union_of_nothing_is_empty(self):
        assert union([]).num_vertices == 0
