"""Second-wave isomorphism tests: richer shapes and counting semantics.

The matcher is the evaluation's ground truth, so its behaviour on cliques,
bipartite shapes, stars and self-similar patterns gets its own suite.
"""


from repro.graph import (
    LabelledGraph,
    count_embeddings,
    find_matches,
    is_isomorphic,
)
from repro.graph.isomorphism import has_embedding


def clique(labels: str) -> LabelledGraph:
    graph = LabelledGraph()
    for v, label in enumerate(labels):
        graph.add_vertex(v, label)
    for u in range(len(labels)):
        for v in range(u + 1, len(labels)):
            graph.add_edge(u, v)
    return graph


def bipartite(left: str, right: str) -> LabelledGraph:
    graph = LabelledGraph()
    for v, label in enumerate(left):
        graph.add_vertex(("l", v), label)
    for v, label in enumerate(right):
        graph.add_vertex(("r", v), label)
    for lv in range(len(left)):
        for rv in range(len(right)):
            graph.add_edge(("l", lv), ("r", rv))
    return graph


class TestCliques:
    def test_triangle_in_k4(self):
        # K4 of 'a' vertices contains C(4,3)=4 distinct triangles.
        matches = find_matches(clique("aaa"), clique("aaaa"))
        assert len(matches) == 4

    def test_triangle_embeddings_count_automorphisms(self):
        # Each triangle has 3! = 6 label-preserving automorphisms.
        assert count_embeddings(clique("aaa"), clique("aaaa")) == 24

    def test_k4_not_in_k3(self):
        assert not has_embedding(clique("aaaa"), clique("aaa"))

    def test_mixed_label_clique(self):
        pattern = clique("ab")
        target = clique("aabb")
        # Edges between one 'a' and one 'b': 2 * 2 = 4 matched sub-graphs.
        assert len(find_matches(pattern, target)) == 4


class TestBipartite:
    def test_wedge_count_in_star(self):
        # Star centre 'a' with 3 'b' leaves: wedges b-a-b = C(3,2) = 3.
        wedge = LabelledGraph.path("bab")
        star = LabelledGraph.star("a", "bbb")
        assert len(find_matches(wedge, star)) == 3

    def test_square_in_k23(self):
        # K_{2,3} with parts 'aa'/'bbb' contains C(2,2)*C(3,2) = 3 squares.
        square = LabelledGraph.cycle("abab")
        assert len(find_matches(square, bipartite("aa", "bbb"))) == 3

    def test_no_odd_cycle_in_bipartite(self):
        triangle = clique("aab")
        assert not has_embedding(triangle, bipartite("aa", "bb"))


class TestPathSelfSimilarity:
    def test_sub_path_occurrences(self):
        # a-b inside a-b-a-b-a: ab edges = 4 (each edge is one match).
        pattern = LabelledGraph.path("ab")
        target = LabelledGraph.path("ababa")
        assert len(find_matches(pattern, target)) == 4

    def test_overlapping_longer_paths(self):
        # Each 'b' centre of a-b-a-b-a has exactly one a,a neighbour pair.
        pattern = LabelledGraph.path("aba")
        target = LabelledGraph.path("ababa")
        assert len(find_matches(pattern, target)) == 2

    def test_path_inside_cycle(self):
        pattern = LabelledGraph.path("aba")
        target = LabelledGraph.cycle("abab")
        # Every vertex of the square centres one 3-path... only 'b'-centred
        # ones match the aba label sequence: 2 centres * 1 = 2? The two b
        # vertices each have both a's as neighbours: one path each.
        assert len(find_matches(pattern, target)) == 2


class TestIsomorphismEdgeCases:
    def test_single_vertices(self):
        a = LabelledGraph.from_edges({0: "a"})
        b = LabelledGraph.from_edges({"x": "a"})
        assert is_isomorphic(a, b)

    def test_empty_graphs(self):
        assert is_isomorphic(LabelledGraph(), LabelledGraph())

    def test_same_shape_different_label_positions(self):
        # Path a-b-b vs b-a-b: same histogram, different structure.
        assert not is_isomorphic(
            LabelledGraph.path("abb"), LabelledGraph.path("bab")
        )

    def test_disconnected_vs_connected(self):
        connected = LabelledGraph.path("ab")
        disconnected = LabelledGraph.from_edges({0: "a", 1: "b"})
        assert not is_isomorphic(connected, disconnected)

    def test_k4_vs_c4_plus_diagonals_minus_one(self):
        # C4 plus one diagonal (the "diamond") is not K4.
        diamond = LabelledGraph.cycle("aaaa")
        diamond.add_edge(0, 2)
        assert not is_isomorphic(diamond, clique("aaaa"))
        assert has_embedding(diamond, clique("aaaa"))
