"""Tests + property tests for exact canonical forms of labelled graphs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import LabelledGraph, canonical_form, is_isomorphic


def relabel_vertices(graph: LabelledGraph, rng: random.Random) -> LabelledGraph:
    """Return an isomorphic copy with permuted, offset vertex ids."""
    vertices = list(graph.vertices())
    shuffled = vertices[:]
    rng.shuffle(shuffled)
    # Map each vertex to its position in the shuffled order, offset so the
    # new ids never overlap the old ones.
    mapping = {old: shuffled.index(old) + 1000 for old in vertices}
    clone = LabelledGraph()
    for v in vertices:
        clone.add_vertex(mapping[v], graph.label(v))
    for u, v in graph.edges():
        clone.add_edge(mapping[u], mapping[v])
    return clone


class TestCanonicalBasics:
    def test_empty_graph(self):
        assert canonical_form(LabelledGraph()) == (0, (), ())

    def test_reversed_path_equal(self):
        assert canonical_form(LabelledGraph.path("abc")) == canonical_form(
            LabelledGraph.path("cba")
        )

    def test_different_labels_differ(self):
        assert canonical_form(LabelledGraph.path("abc")) != canonical_form(
            LabelledGraph.path("abd")
        )

    def test_insertion_order_of_tied_classes(self):
        """Regression: the path b-a-b-b has two colour classes sharing
        (label, degree) -- degree-1 ``b`` next to ``a`` vs next to ``b``.
        Class order must come from the refinement keys themselves, never
        from an iteration-ordered palette, or vertex insertion order
        changes the form."""
        labels = {0: "b", 1: "a", 2: "b", 3: "b"}
        edges = [(0, 1), (1, 2), (2, 3)]
        forms = set()
        for order in [(0, 1, 2, 3), (1, 2, 3, 0), (3, 2, 1, 0), (2, 0, 3, 1)]:
            graph = LabelledGraph()
            for vertex in order:
                graph.add_vertex(vertex, labels[vertex])
            for u, v in edges:
                graph.add_edge(u, v)
            forms.add(canonical_form(graph))
        assert len(forms) == 1

    def test_path_vs_cycle_differ(self):
        assert canonical_form(LabelledGraph.path("abca")) != canonical_form(
            LabelledGraph.cycle("abca")
        )

    def test_star_vs_path_differ(self):
        assert canonical_form(LabelledGraph.star("b", "aba")) != canonical_form(
            LabelledGraph.path("abab")
        )

    def test_vertex_ids_irrelevant(self):
        a = LabelledGraph.from_edges({1: "a", 2: "b"}, [(1, 2)])
        b = LabelledGraph.from_edges({"x": "b", "y": "a"}, [("x", "y")])
        assert canonical_form(a) == canonical_form(b)

    def test_form_is_hashable(self):
        hash(canonical_form(LabelledGraph.cycle("abab")))

    def test_highly_symmetric_cycle_ok(self):
        # All-same-label 6-cycle: refinement cannot split it, but 6 vertices
        # stay far below the ordering cap.
        form1 = canonical_form(LabelledGraph.cycle("aaaaaa"))
        form2 = canonical_form(LabelledGraph.cycle("aaaaaa", start_id=50))
        assert form1 == form2


@st.composite
def small_labelled_graphs(draw):
    """Random connected-ish labelled graphs with <= 6 vertices."""
    n = draw(st.integers(min_value=1, max_value=6))
    labels = draw(
        st.lists(st.sampled_from("abc"), min_size=n, max_size=n)
    )
    graph = LabelledGraph()
    for v, label in enumerate(labels):
        graph.add_vertex(v, label)
    # Spanning chain keeps most graphs connected, then random extra edges.
    for v in range(1, n):
        graph.add_edge(v - 1, v)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=6)) if possible else []
    for u, v in extra:
        graph.add_edge(u, v)
    return graph


class TestCanonicalProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_labelled_graphs(), st.integers(min_value=0, max_value=2**16))
    def test_isomorphic_copies_share_form(self, graph, seed):
        copy = relabel_vertices(graph, random.Random(seed))
        assert canonical_form(graph) == canonical_form(copy)

    @settings(max_examples=60, deadline=None)
    @given(small_labelled_graphs(), small_labelled_graphs())
    def test_form_equality_implies_isomorphism(self, first, second):
        if canonical_form(first) == canonical_form(second):
            assert is_isomorphic(first, second)
        else:
            assert not is_isomorphic(first, second)
