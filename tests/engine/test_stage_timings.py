"""Per-stage timing counters threaded through the streaming engine."""

import random

from repro.core.config import LoomConfig
from repro.core.loom import LoomPartitioner
from repro.engine.pipeline import StreamingEngine
from repro.graph.generators import barabasi_albert
from repro.graph.labelled import LabelledGraph
from repro.partitioning.base import default_capacity
from repro.stream.sources import stream_from_graph
from repro.workload import PatternQuery, Workload

STAGES = ("match", "extend", "regrow", "evict")


def build(stage_timings):
    graph = barabasi_albert(120, 2, rng=random.Random(0))
    events = stream_from_graph(graph, ordering="random", rng=random.Random(1))
    workload = Workload([PatternQuery("abc", LabelledGraph.path("abc"))])
    config = LoomConfig(
        k=2,
        capacity=default_capacity(graph.num_vertices, 2, 1.2),
        window_size=16,
        motif_threshold=0.2,
        stage_timings=stage_timings,
    )
    return LoomPartitioner(workload, config), events


def test_stage_seconds_off_by_default():
    loom, events = build(stage_timings=False)
    engine = StreamingEngine(loom)
    engine.run(events)
    assert loom.stage_seconds is None
    assert engine.stats.stage_seconds == {}


def test_stage_seconds_flow_to_engine_stats_and_hooks():
    loom, events = build(stage_timings=True)
    seen = []

    def hook(batch):
        if batch.stage_seconds is not None:
            seen.append(batch.stage_seconds)

    engine = StreamingEngine(loom, batch_size=64, hooks=(hook,))
    engine.run(events)

    final = engine.stats.stage_seconds
    assert set(final) == set(STAGES)
    assert all(seconds >= 0.0 for seconds in final.values())
    # Something matched and something was evicted on this stream.
    assert final["match"] > 0.0
    assert final["evict"] > 0.0
    assert seen, "hooks should observe per-batch stage snapshots"
    # Snapshots are cumulative: monotone per stage.
    for earlier, later in zip(seen, seen[1:], strict=False):
        for stage in STAGES:
            assert later[stage] >= earlier[stage]


def test_timed_and_untimed_assignments_agree():
    timed, events = build(stage_timings=True)
    plain, _ = build(stage_timings=False)
    assert timed.partition_stream(events).assigned() == (
        plain.partition_stream(events).assigned()
    )
