"""Tests for the batched streaming engine.

The load-bearing property is *equivalence*: driving any partitioner
through :class:`StreamingEngine` in batches of any size must produce the
exact assignments of the pre-refactor event-at-a-time loops (reproduced
verbatim here as the reference), on the paper's figure-1 workload and on
larger streams.
"""

import random

import pytest

from repro.core import LoomConfig, LoomPartitioner
from repro.engine.pipeline import (
    BatchStats,
    StreamingEngine,
    VertexStreamAdapter,
    as_stream_partitioner,
)
from repro.graph.generators import plant_motifs
from repro.graph.labelled import LabelledGraph
from repro.partitioning.base import PartitionAssignment, default_capacity
from repro.partitioning.streaming import LinearDeterministicGreedy
from repro.stream.events import EdgeArrival, VertexArrival
from repro.stream.sources import stream_from_graph
from repro.workload import PatternQuery, Workload, figure1_graph, figure1_workload


def reference_partition_stream(partitioner, events, *, k, capacity):
    """The seed's event-at-a-time driver, kept verbatim as the oracle."""
    assignment = PartitionAssignment(k, capacity)
    pending_vertex = None
    pending_neighbours = []

    def flush():
        nonlocal pending_vertex
        if pending_vertex is None:
            return
        vertex, label = pending_vertex
        partition = partitioner.place(
            vertex, label, pending_neighbours, assignment
        )
        assignment.assign(vertex, partition)
        pending_vertex = None
        pending_neighbours.clear()

    for event in events:
        if isinstance(event, VertexArrival):
            flush()
            pending_vertex = (event.vertex, event.label)
        elif isinstance(event, EdgeArrival):
            if pending_vertex is not None and event.v == pending_vertex[0]:
                pending_neighbours.append(event.u)
            elif pending_vertex is not None and event.u == pending_vertex[0]:
                pending_neighbours.append(event.v)
    flush()
    return assignment


@pytest.fixture(scope="module")
def figure1():
    graph = figure1_graph()
    events = stream_from_graph(graph, ordering="random", rng=random.Random(0))
    return graph, figure1_workload(q1_frequency=4.0), events


@pytest.fixture(scope="module")
def motif_stream():
    motif = LabelledGraph.path("abc")
    graph = plant_motifs(
        [(motif, 20)], noise_vertices=40, noise_edge_probability=0.01,
        rng=random.Random(3),
    )
    workload = Workload([PatternQuery("abc", motif)])
    events = stream_from_graph(graph, ordering="random", rng=random.Random(4))
    return graph, workload, events


class TestVertexStreamEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 3, 7, 10_000])
    def test_ldg_matches_reference_on_figure1(self, figure1, batch_size):
        graph, _, events = figure1
        expected = reference_partition_stream(
            LinearDeterministicGreedy(), events, k=2, capacity=5
        )
        adapter = VertexStreamAdapter(
            LinearDeterministicGreedy(), k=2, capacity=5
        )
        got = StreamingEngine(adapter, batch_size=batch_size).run(events)
        assert got.assigned() == expected.assigned()

    @pytest.mark.parametrize("batch_size", [1, 17, 256])
    def test_ldg_matches_reference_on_motif_stream(self, motif_stream, batch_size):
        graph, _, events = motif_stream
        capacity = default_capacity(graph.num_vertices, 4, 1.2)
        expected = reference_partition_stream(
            LinearDeterministicGreedy(), events, k=4, capacity=capacity
        )
        adapter = VertexStreamAdapter(
            LinearDeterministicGreedy(), k=4, capacity=capacity
        )
        got = StreamingEngine(adapter, batch_size=batch_size).run(events)
        assert got.assigned() == expected.assigned()


class TestLoomEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 5, 10_000])
    def test_batched_loom_matches_event_at_a_time(self, figure1, batch_size):
        _, workload, events = figure1
        config = LoomConfig(
            k=2, capacity=5, window_size=8, motif_threshold=0.6
        )
        # Event-at-a-time oracle: the seed's partition_stream body.
        oracle = LoomPartitioner(workload, config)
        for event in events:
            oracle.process(event)
        oracle.flush()

        batched = LoomPartitioner(workload, config)
        got = StreamingEngine(batched, batch_size=batch_size).run(events)
        assert got.assigned() == oracle.assignment.assigned()
        assert batched.stats == oracle.stats

    def test_loom_assignment_index_equivalent(self, motif_stream):
        graph, workload, events = motif_stream
        capacity = default_capacity(graph.num_vertices, 4, 1.2)
        config = LoomConfig(
            k=4, capacity=capacity, window_size=16, motif_threshold=0.2
        )
        plain = LoomPartitioner(workload, config, assignment_index=False)
        indexed = LoomPartitioner(workload, config, assignment_index=True)
        assert (
            plain.partition_stream(events).assigned()
            == indexed.partition_stream(events).assigned()
        )

    def test_loom_assignment_index_deduplicates_external_edges(self, figure1):
        """A repeated external edge must not double-count in the index.

        The window's external-neighbour sets deduplicate; the neighbour
        index must mirror that, or a duplicated edge arrival would skew
        the LDG score toward the duplicate's partition.
        """
        _, workload, _ = figure1
        # Window size 2: each vertex arrival assigns the oldest buffered
        # vertex, so u -> p0 and x -> p1 are placed before v's edges
        # arrive.  The duplicated (v, x) edge points at the higher-index
        # partition p1: counted twice it flips v's LDG argmax from p0 to
        # p1, which is exactly the divergence the dedup guard prevents.
        events = [
            VertexArrival("u", "a", 0),
            VertexArrival("x", "b", 1),
            VertexArrival("m", "a", 2),   # assigns u
            VertexArrival("v", "b", 3),   # assigns x
            EdgeArrival("v", "u", 4),     # external toward p0
            EdgeArrival("v", "x", 5),     # external toward p1
            EdgeArrival("v", "x", 6),     # duplicate external edge
            VertexArrival("w", "a", 7),   # assigns m
            VertexArrival("q", "b", 8),   # assigns v (decision under test)
        ]
        config = LoomConfig(k=3, capacity=4, window_size=2, motif_threshold=0.6)
        plain = LoomPartitioner(workload, config, assignment_index=False)
        plain_assigned = plain.partition_stream(events).assigned()
        assert plain_assigned["v"] == 0  # the tie resolves to p0 on the scan path
        assert (
            LoomPartitioner(workload, config, assignment_index=True)
            .partition_stream(events)
            .assigned()
            == plain_assigned
        )


class TestEngineMechanics:
    def test_batch_stats_hooks_fire(self, figure1):
        _, _, events = figure1
        seen: list[BatchStats] = []
        adapter = VertexStreamAdapter(
            LinearDeterministicGreedy(), k=2, capacity=5
        )
        engine = StreamingEngine(adapter, batch_size=4, hooks=(seen.append,))
        engine.run(events)
        assert seen
        assert sum(batch.events for batch in seen) == len(events)
        assert [batch.index for batch in seen] == list(range(len(seen)))
        assert sum(batch.vertices for batch in seen) == 8
        assert engine.stats.events == len(events)
        assert engine.stats.batches == len(seen)

    def test_window_occupancy_tracked_for_loom(self, figure1):
        _, workload, events = figure1
        config = LoomConfig(k=2, capacity=5, window_size=4, motif_threshold=0.6)
        loom = LoomPartitioner(workload, config)
        engine = StreamingEngine(loom, batch_size=2)
        engine.run(events)
        assert 0 < engine.stats.peak_window_occupancy <= 4

    def test_invalid_batch_size_rejected(self):
        adapter = VertexStreamAdapter(
            LinearDeterministicGreedy(), k=2, capacity=5
        )
        with pytest.raises(ValueError):
            StreamingEngine(adapter, batch_size=0)

    def test_as_stream_partitioner_wraps_vertex_heuristics(self):
        lifted = as_stream_partitioner(
            LinearDeterministicGreedy(), k=2, capacity=5
        )
        assert isinstance(lifted, VertexStreamAdapter)

    def test_as_stream_partitioner_passes_protocol_through(self, figure1):
        _, workload, _ = figure1
        config = LoomConfig(k=2, capacity=5, window_size=8, motif_threshold=0.6)
        loom = LoomPartitioner(workload, config)
        assert as_stream_partitioner(loom, k=2, capacity=5) is loom

    def test_as_stream_partitioner_rejects_junk(self):
        with pytest.raises(TypeError):
            as_stream_partitioner(object(), k=2, capacity=5)

    def test_throughput_fields(self, figure1):
        _, _, events = figure1
        adapter = VertexStreamAdapter(
            LinearDeterministicGreedy(), k=2, capacity=5
        )
        engine = StreamingEngine(adapter)
        engine.run(events)
        assert engine.stats.events_per_second >= 0.0
        assert engine.stats.vertices_per_second >= 0.0

    def test_event_hook_sees_every_event_in_order(self, figure1):
        _, _, events = figure1
        seen = []
        adapter = VertexStreamAdapter(
            LinearDeterministicGreedy(), k=2, capacity=5
        )
        engine = StreamingEngine(
            adapter, batch_size=3, event_hook=seen.extend
        )
        engine.run(events)
        assert seen == list(events)
