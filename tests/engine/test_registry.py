"""Tests for the partitioner registry (discovery, capabilities, errors)."""

import pytest

from repro.engine.registry import (
    OFFLINE,
    STREAMING,
    PartitionerRegistry,
    PartitionRequest,
    UnknownPartitionerError,
    default_registry,
)
from repro.graph.labelled import LabelledGraph
from repro.partitioning.base import StreamingVertexPartitioner
from repro.stream.sources import stream_from_graph
from repro.workload import figure1_graph, figure1_workload

BUILTIN_STREAMING = {
    "hash", "random", "balanced", "chunking", "greedy", "ldg", "edg",
    "fennel", "loom", "loom_ta", "ta-ldg",
}
BUILTIN_OFFLINE = {"offline", "offline_wa"}


def _request(**overrides) -> PartitionRequest:
    graph = figure1_graph()
    defaults = dict(
        graph=graph,
        events=stream_from_graph(graph, ordering="natural"),
        k=2,
        capacity=5,
        workload=figure1_workload(),
        window_size=8,
        motif_threshold=0.6,
    )
    defaults.update(overrides)
    return PartitionRequest(**defaults)


class TestBuiltins:
    def test_every_builtin_registered(self):
        names = set(default_registry.names())
        assert BUILTIN_STREAMING | BUILTIN_OFFLINE <= names

    def test_kind_filters(self):
        assert set(default_registry.names(kind=STREAMING)) >= BUILTIN_STREAMING
        assert set(default_registry.names(kind=OFFLINE)) >= BUILTIN_OFFLINE

    def test_workload_capability_metadata(self):
        needy = set(default_registry.names(needs_workload=True))
        assert {"loom", "loom_ta", "ta-ldg", "offline_wa"} <= needy
        assert "ldg" not in needy

    @pytest.mark.parametrize("name", sorted(BUILTIN_STREAMING))
    def test_streaming_round_trip_by_name(self, name):
        """Every streaming built-in builds and places the figure-1 graph."""
        spec = default_registry.resolve(name)
        assert spec.is_streaming
        request = _request()
        partitioner = spec.build(request)
        assert partitioner is not None

    @pytest.mark.parametrize("name", sorted(BUILTIN_OFFLINE))
    def test_offline_round_trip_by_name(self, name):
        spec = default_registry.resolve(name)
        assert not spec.is_streaming
        assignment = spec.build(_request())
        assert assignment.num_assigned == figure1_graph().num_vertices

    def test_descriptions_present(self):
        for spec in default_registry.specs():
            assert spec.description, spec.name

    def test_membership(self):
        assert "ldg" in default_registry
        assert "metis" not in default_registry


class TestErrors:
    def test_unknown_name_raises_value_error(self):
        with pytest.raises(ValueError):
            default_registry.resolve("metis")

    def test_unknown_name_error_type(self):
        with pytest.raises(UnknownPartitionerError, match="unknown method"):
            default_registry.resolve("no-such-method")

    def test_workload_requirement_enforced(self):
        spec = default_registry.resolve("loom")
        with pytest.raises(ValueError, match="needs a workload"):
            spec.check_request(_request(workload=None))

    def test_duplicate_registration_rejected(self):
        registry = PartitionerRegistry()
        registry.add("x", kind=STREAMING, build=lambda request: None)
        with pytest.raises(Exception, match="already registered"):
            registry.add("x", kind=STREAMING, build=lambda request: None)

    def test_bad_kind_rejected(self):
        registry = PartitionerRegistry()
        with pytest.raises(Exception, match="kind"):
            registry.add("x", kind="sideways", build=lambda request: None)


class TestSelfRegistration:
    def test_decorator_registers_and_builds(self):
        registry = PartitionerRegistry()
        registry._builtins_loaded = True  # isolate from the global providers

        @registry.register("noop", description="always partition 0")
        class Noop(StreamingVertexPartitioner):
            def place(self, vertex, label, placed_neighbours, assignment):
                return 0

        spec = registry.resolve("noop")
        built = spec.build(_request())
        assert isinstance(built, Noop)
        assert spec.description == "always partition 0"

    def test_request_capacity_resolution(self):
        request = _request(capacity=None, k=2, slack=1.0)
        graph = LabelledGraph.path("abcd")
        request.graph = graph
        assert request.resolved_capacity() == 2

    def test_request_rng_is_stable(self):
        request = _request(seed=42)
        assert request.resolved_rng() is request.resolved_rng()
