"""TPSTry++ precomputed lookup tables stay consistent with the DAG."""

from repro.graph.labelled import LabelledGraph
from repro.signatures.signature import SignatureScheme
from repro.tpstry.trie import StreamingTPSTry, TPSTryPP
from repro.workload import PatternQuery, Workload


def abc_trie():
    workload = Workload(
        [
            PatternQuery("abc", LabelledGraph.path("abc"), 2.0),
            PatternQuery("abcd", LabelledGraph.path("abcd"), 1.0),
        ]
    )
    return TPSTryPP.from_workload(workload)


def test_child_steps_mirror_children():
    trie = abc_trie()
    for node in trie.nodes():
        assert set(node.child_steps.values()) == node.children
        for step, child_sig in node.child_steps.items():
            assert node.signature * step == child_sig


def test_child_step_probe_resolves_extension():
    """A one-edge extension's step factor hits the parent's table."""
    trie = abc_trie()
    scheme = trie.scheme
    a, b, c = (scheme.label_id(x) for x in "abc")
    ab_sig = scheme.pair_signature(a, b)
    parent = trie.node_by_signature(ab_sig)
    assert parent is not None
    step = scheme.edge_step_with_vertex(b, c, c)   # extend a-b by b-c
    assert step in parent.child_steps
    child = trie.node_by_signature(parent.child_steps[step])
    assert child is not None and child.num_edges == 2


def test_node_by_signature_single_probe_table_tracks_removal():
    window = StreamingTPSTry(window=1)
    abc = PatternQuery("abc", LabelledGraph.path("abc"))
    ab = PatternQuery("ab", LabelledGraph.path("ab"))
    window.observe(abc)
    scheme = window.trie.scheme
    a, b = scheme.label_id("a"), scheme.label_id("b")
    abc_sig = scheme.pair_signature(a, b) * scheme.edge_step_with_vertex(
        b, scheme.label_id("c"), scheme.label_id("c")
    )
    assert window.trie.node_by_signature(abc_sig) is not None
    window.observe(ab)                 # expires abc from the window
    assert window.trie.node_by_signature(abc_sig) is None
    # Surviving nodes (a, b, a-b) still resolve, and their step tables
    # no longer point at the dropped 2-edge motif.
    ab_sig = scheme.pair_signature(a, b)
    node = window.trie.node_by_signature(ab_sig)
    assert node is not None
    assert not node.child_steps


def test_max_motif_edges_tracks_additions_and_removals():
    window = StreamingTPSTry(window=1)
    assert window.trie.max_motif_edges == 0
    window.observe(PatternQuery("abcd", LabelledGraph.path("abcd")))
    assert window.trie.max_motif_edges == 3
    window.observe(PatternQuery("ab", LabelledGraph.path("ab")))
    assert window.trie.max_motif_edges == 1


def test_shared_scheme_tables_agree_across_tries():
    scheme = SignatureScheme()
    first = TPSTryPP.from_workload(
        Workload([PatternQuery("abc", LabelledGraph.path("abc"))]),
        scheme=scheme,
    )
    second = TPSTryPP.from_workload(
        Workload([PatternQuery("cba", LabelledGraph.path("cba"))]),
        scheme=scheme,
    )
    # Same motif shape -> same signature in both DAGs.
    a, b = scheme.label_id("a"), scheme.label_id("b")
    sig = scheme.pair_signature(a, b)
    assert first.node_by_signature(sig) is not None
    assert second.node_by_signature(sig) is not None
