"""Tests for traversal-probability estimation from the TPSTry++."""

import random

import pytest

from repro.bench.harness import evaluate_assignment, partition_with
from repro.graph import LabelledGraph
from repro.graph.generators import plant_motifs
from repro.partitioning import PartitionAssignment
from repro.stream.sources import stream_from_graph
from repro.tpstry import (
    TPSTryPP,
    edge_motif_probability,
    expected_cut_traversal_weight,
    normalised_cut_traversal_weight,
    vertex_traversal_probability,
)
from repro.workload import PatternQuery, Workload, figure1_graph, figure1_workload


@pytest.fixture(scope="module")
def fig_trie():
    return TPSTryPP.from_workload(figure1_workload())


class TestEdgeMotifProbability:
    def test_hot_edge(self, fig_trie):
        assert edge_motif_probability(fig_trie, "a", "b") == pytest.approx(1.0)

    def test_symmetric(self, fig_trie):
        assert edge_motif_probability(fig_trie, "c", "b") == edge_motif_probability(
            fig_trie, "b", "c"
        )

    def test_cold_edge_zero(self, fig_trie):
        # No figure-1 query contains an a-d edge.
        assert edge_motif_probability(fig_trie, "a", "d") == 0.0


class TestVertexTraversalProbability:
    def test_vertex_on_hot_edges(self, fig_trie):
        graph = figure1_graph()
        # Vertex 2 (label b) touches a-b edges: certain to be traversed.
        assert vertex_traversal_probability(fig_trie, graph, 2) == pytest.approx(1.0)

    def test_isolated_vertex_zero(self, fig_trie):
        graph = LabelledGraph.from_edges({0: "a"})
        assert vertex_traversal_probability(fig_trie, graph, 0) == 0.0

    def test_vertex_with_only_cold_edges(self, fig_trie):
        graph = LabelledGraph.from_edges({0: "a", 1: "d"}, [(0, 1)])
        assert vertex_traversal_probability(fig_trie, graph, 0) == 0.0

    def test_bounded_by_one(self, fig_trie):
        graph = figure1_graph()
        for vertex in graph.vertices():
            p = vertex_traversal_probability(fig_trie, graph, vertex)
            assert 0.0 <= p <= 1.0


class TestCutWeightPredictor:
    def test_no_cut_no_weight(self, fig_trie):
        graph = figure1_graph()
        assignment = PartitionAssignment(1, 8)
        for vertex in graph.vertices():
            assignment.assign(vertex, 0)
        assert expected_cut_traversal_weight(fig_trie, graph, assignment) == 0.0
        assert normalised_cut_traversal_weight(fig_trie, graph, assignment) == 0.0

    def test_cutting_hot_edges_weighs_more_than_cold(self, fig_trie):
        graph = figure1_graph()

        def assignment_for(cut_pair):
            a = PartitionAssignment(2, 8)
            for vertex in graph.vertices():
                a.assign(vertex, 1 if vertex in cut_pair else 0)
            return a

        # Isolating vertex 4 cuts only the cold c-d edge; isolating vertex
        # 2 cuts hot a-b/b-c edges.
        cold = expected_cut_traversal_weight(fig_trie, graph, assignment_for({4}))
        hot = expected_cut_traversal_weight(fig_trie, graph, assignment_for({2}))
        assert hot > cold

    def test_predictor_preserves_method_ordering(self):
        """The static predictor must rank hash > ldg > loom like the
        measured traversal probability does (the point of having it)."""
        motif = LabelledGraph.path("abc")
        graph = plant_motifs([(motif, 30)], noise_vertices=60,
                             noise_edge_probability=0.01,
                             rng=random.Random(1))
        workload = Workload([PatternQuery("abc", motif)])
        trie = TPSTryPP.from_workload(workload)
        events = stream_from_graph(graph, ordering="random",
                                   rng=random.Random(2))
        predicted = {}
        measured = {}
        for method in ("hash", "ldg", "loom"):
            result = partition_with(
                method, graph, events, k=4, workload=workload,
                window_size=96, motif_threshold=0.5,
            )
            predicted[method] = normalised_cut_traversal_weight(
                trie, graph, result.assignment
            )
            measured[method] = evaluate_assignment(
                graph, result, workload, executions=40
            ).remote_probability
        assert predicted["loom"] < predicted["ldg"] < predicted["hash"]
        assert measured["loom"] < measured["ldg"] < measured["hash"]
