"""Tests for the original path-only TPSTry (ablation baseline)."""

import pytest

from repro.exceptions import WorkloadError
from repro.graph import LabelledGraph
from repro.tpstry import PathTPSTry
from repro.workload import PatternQuery, Workload, figure1_workload


class TestPathTrie:
    def test_registers_paths_of_path_query(self):
        trie = PathTPSTry.from_workload(
            Workload([PatternQuery("q", LabelledGraph.path("abc"))])
        )
        assert ("a", "b") in trie
        assert ("a", "b", "c") in trie

    def test_direction_canonicalised(self):
        trie = PathTPSTry.from_workload(
            Workload([PatternQuery("q", LabelledGraph.path("abc"))])
        )
        assert ("c", "b", "a") in trie  # reversed lookup canonicalises

    def test_p_values(self):
        trie = PathTPSTry.from_workload(figure1_workload())
        assert trie.p_value(("a", "b")) == pytest.approx(1.0)
        assert trie.p_value(("a", "b", "c", "d")) == pytest.approx(1 / 3)

    def test_frequent_paths_sorted_longest_first(self):
        trie = PathTPSTry.from_workload(figure1_workload())
        frequent = trie.frequent_paths(0.3)
        lengths = [len(p) for p in frequent]
        assert lengths == sorted(lengths, reverse=True)

    def test_cycle_motif_invisible_to_path_trie(self):
        """The decisive limitation: q1's square is not representable.

        Every path through the square is at most 4 vertices (a-b-a-b); the
        closed cycle itself has no path encoding, so the trie's best motif
        for q1 underestimates the traversal structure.
        """
        square_only = Workload([PatternQuery("q1", LabelledGraph.cycle("abab"))])
        trie = PathTPSTry.from_workload(square_only)
        for key in trie.paths():
            graph = LabelledGraph.path(key)
            assert graph.num_edges < 4  # never the 4-edge cycle

    def test_frequent_motifs_returns_graphs(self):
        trie = PathTPSTry.from_workload(figure1_workload())
        motifs = trie.frequent_motifs(0.9)
        assert motifs
        for motif in motifs:
            assert motif.num_edges >= 1

    def test_max_length_respected(self):
        long_path = PatternQuery("long", LabelledGraph.path("ababab"))
        trie = PathTPSTry(max_length=3)
        trie.add_query(long_path)
        assert all(len(key) <= 3 for key in trie.paths())

    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            PathTPSTry(max_length=0)
        trie = PathTPSTry.from_workload(figure1_workload())
        with pytest.raises(WorkloadError):
            trie.frequent_paths(0.0)

    def test_support_counted_once_per_query(self):
        # The path a-b occurs multiple times inside abab but counts once.
        trie = PathTPSTry.from_workload(
            Workload([PatternQuery("q", LabelledGraph.path("abab"))])
        )
        assert trie.p_value(("a", "b")) == pytest.approx(1.0)
