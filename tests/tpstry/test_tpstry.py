"""Tests for the TPSTry++ DAG (Algorithm 1, p-values, frequent motifs).

The reference point is the paper's figure 2: the TPSTry++ for the figure-1
workload Q = {q1: cycle abab, q2: path abc, q3: path abcd}.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import WorkloadError
from repro.graph import LabelledGraph, is_isomorphic
from repro.tpstry import StreamingTPSTry, TPSTryPP
from repro.workload import PatternQuery, Workload, figure1_workload, path_workload


@pytest.fixture()
def fig_trie() -> TPSTryPP:
    return TPSTryPP.from_workload(figure1_workload())


def node_for(trie: TPSTryPP, graph: LabelledGraph):
    return trie.node_by_signature(trie.scheme.signature_of(graph))


class TestConstruction:
    def test_roots_are_single_labels(self, fig_trie):
        root_labels = {
            n.graph.label(next(iter(n.graph.vertices()))) for n in fig_trie.roots()
        }
        assert root_labels == {"a", "b", "c", "d"}

    def test_contains_ab_edge_motif(self, fig_trie):
        assert node_for(fig_trie, LabelledGraph.path("ab")) is not None

    def test_contains_abc_path_motif(self, fig_trie):
        assert node_for(fig_trie, LabelledGraph.path("abc")) is not None

    def test_contains_q1_square_motif(self, fig_trie):
        assert node_for(fig_trie, LabelledGraph.cycle("abab")) is not None

    def test_square_only_from_q1(self, fig_trie):
        node = node_for(fig_trie, LabelledGraph.cycle("abab"))
        assert node.queries == {"q1"}

    def test_ab_shared_by_all_queries(self, fig_trie):
        node = node_for(fig_trie, LabelledGraph.path("ab"))
        assert node.queries == {"q1", "q2", "q3"}

    def test_abcd_only_from_q3(self, fig_trie):
        node = node_for(fig_trie, LabelledGraph.path("abcd"))
        assert node.queries == {"q3"}

    def test_duplicate_query_rejected(self, fig_trie):
        with pytest.raises(WorkloadError):
            fig_trie.add_query(PatternQuery("q1", LabelledGraph.path("ab")))

    def test_node_count_matches_distinct_subgraph_shapes(self):
        # For the single query ab there are exactly: {a}, {b}, {a-b}.
        trie = TPSTryPP.from_workload(
            Workload([PatternQuery("q", LabelledGraph.path("ab"))])
        )
        assert len(trie) == 3

    def test_abab_path_and_square_distinct_nodes(self, fig_trie):
        path = node_for(fig_trie, LabelledGraph.path("abab"))
        square = node_for(fig_trie, LabelledGraph.cycle("abab"))
        assert path is not None and square is not None
        assert path is not square

    def test_oversized_query_rejected(self):
        big = LabelledGraph.cycle("ab" * 9)  # 18 edges
        trie = TPSTryPP()
        with pytest.raises(WorkloadError):
            trie.add_query(PatternQuery("big", big))


class TestDagEdges:
    def test_children_are_one_edge_extensions(self, fig_trie):
        ab = node_for(fig_trie, LabelledGraph.path("ab"))
        abc = node_for(fig_trie, LabelledGraph.path("abc"))
        assert abc.signature in ab.children
        assert ab.signature in abc.parents

    def test_roots_parent_single_edges(self, fig_trie):
        a_root = node_for(fig_trie, LabelledGraph.from_edges({0: "a"}))
        ab = node_for(fig_trie, LabelledGraph.path("ab"))
        assert ab.signature in a_root.children

    def test_square_reachable_from_abab_path(self, fig_trie):
        # Closing the 4-path a-b-a-b into the square adds one edge.
        path = node_for(fig_trie, LabelledGraph.path("abab"))
        square = node_for(fig_trie, LabelledGraph.cycle("abab"))
        assert square.signature in path.children

    def test_dag_is_acyclic_by_edge_count(self, fig_trie):
        for node in fig_trie.nodes():
            for child_sig in node.children:
                child = fig_trie.node_by_signature(child_sig)
                if child is not None:
                    assert child.num_edges == node.num_edges + 1 or (
                        node.is_root and child.num_edges == 1
                    )


class TestPValues:
    def test_p_value_of_shared_motif_is_one(self, fig_trie):
        ab = node_for(fig_trie, LabelledGraph.path("ab"))
        assert fig_trie.p_value(ab) == pytest.approx(1.0)

    def test_p_value_of_exclusive_motif(self, fig_trie):
        square = node_for(fig_trie, LabelledGraph.cycle("abab"))
        assert fig_trie.p_value(square) == pytest.approx(1 / 3)

    def test_frequencies_weight_p_values(self):
        trie = TPSTryPP.from_workload(
            figure1_workload(q1_frequency=8.0, q2_frequency=1.0, q3_frequency=1.0)
        )
        square = node_for(trie, LabelledGraph.cycle("abab"))
        assert trie.p_value(square) == pytest.approx(0.8)

    def test_frequent_motifs_threshold(self, fig_trie):
        frequent = fig_trie.frequent_motifs(0.99)
        shapes = {tuple(sorted(n.graph.vertex_labels().values())) for n in frequent}
        # Only motifs common to all three queries: a-b (and nothing larger,
        # since q1 has no c vertex).
        assert ("a", "b") in shapes
        for node in frequent:
            assert fig_trie.p_value(node) >= 0.99

    def test_frequent_motifs_require_edges(self, fig_trie):
        for node in fig_trie.frequent_motifs(0.1):
            assert node.num_edges >= 1

    def test_threshold_above_one_yields_nothing(self, fig_trie):
        assert fig_trie.frequent_motifs(1.01) == []

    def test_bad_threshold_rejected(self, fig_trie):
        with pytest.raises(WorkloadError):
            fig_trie.frequent_motifs(0.0)

    def test_max_motif_vertices(self, fig_trie):
        assert fig_trie.max_motif_vertices(0.3) >= 4  # q1's square
        assert fig_trie.max_motif_vertices(1.01) == 0


class TestRemoval:
    def test_remove_query_prunes_exclusive_motifs(self):
        trie = TPSTryPP.from_workload(figure1_workload())
        square_sig = trie.scheme.signature_of(LabelledGraph.cycle("abab"))
        assert trie.node_by_signature(square_sig) is not None
        trie.remove_query("q1")
        assert trie.node_by_signature(square_sig) is None

    def test_remove_query_keeps_shared_motifs(self):
        trie = TPSTryPP.from_workload(figure1_workload())
        trie.remove_query("q1")
        ab = trie.node_by_signature(trie.scheme.signature_of(LabelledGraph.path("ab")))
        assert ab is not None
        assert ab.queries == {"q2", "q3"}

    def test_remove_unknown_query_raises(self):
        trie = TPSTryPP.from_workload(figure1_workload())
        with pytest.raises(WorkloadError):
            trie.remove_query("nope")

    def test_remove_then_readd_roundtrip(self):
        trie = TPSTryPP.from_workload(figure1_workload())
        before = len(trie)
        trie.remove_query("q3")
        trie.add_query(PatternQuery("q3", LabelledGraph.path("abcd")))
        assert len(trie) == before


class TestStreamingWindow:
    def test_window_expires_old_queries(self):
        stream = StreamingTPSTry(window=2)
        q_square = PatternQuery("square", LabelledGraph.cycle("abab"))
        q_path = PatternQuery("path", LabelledGraph.path("cd"))
        stream.observe(q_square)
        stream.observe(q_path)
        stream.observe(q_path)  # square's observation expires
        square_sig = stream.trie.scheme.signature_of(LabelledGraph.cycle("abab"))
        assert stream.trie.node_by_signature(square_sig) is None

    def test_window_support_tracks_recent_frequency(self):
        stream = StreamingTPSTry(window=4)
        hot = PatternQuery("hot", LabelledGraph.path("ab"))
        cold = PatternQuery("cold", LabelledGraph.path("cd"))
        for _ in range(3):
            stream.observe(hot)
        stream.observe(cold)
        ab_sig = stream.trie.scheme.signature_of(LabelledGraph.path("ab"))
        node = stream.trie.node_by_signature(ab_sig)
        assert stream.trie.p_value(node) == pytest.approx(0.75)

    def test_bad_window_rejected(self):
        with pytest.raises(WorkloadError):
            StreamingTPSTry(window=0)

    def test_len_tracks_buffer(self):
        stream = StreamingTPSTry(window=3)
        q = PatternQuery("q", LabelledGraph.path("ab"))
        stream.observe(q)
        stream.observe(q)
        assert len(stream) == 2


class TestAuthoritativeMode:
    def test_authoritative_matches_default_on_paper_workload(self):
        default = TPSTryPP.from_workload(figure1_workload())
        exact = TPSTryPP.from_workload(figure1_workload(), authoritative=True)
        assert len(default) == len(exact)
        assert exact.collisions == []

    def test_representative_graphs_isomorphic_across_modes(self):
        default = TPSTryPP.from_workload(figure1_workload())
        exact = TPSTryPP.from_workload(figure1_workload(), authoritative=True)
        for node in exact.nodes():
            twin = default.node_by_signature(node.signature)
            assert twin is not None
            assert is_isomorphic(node.graph, twin.graph)


class TestAntiMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_p_values_anti_monotone_along_dag(self, seed):
        workload = path_workload(
            "abc", count=4, min_length=2, max_length=4, rng=random.Random(seed)
        )
        trie = TPSTryPP.from_workload(workload)
        for node in trie.nodes():
            for child_sig in node.children:
                child = trie.node_by_signature(child_sig)
                if child is not None:
                    assert trie.p_value(child) <= trie.p_value(node) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_every_node_supported_by_some_query(self, seed):
        workload = path_workload(
            "ab", count=3, min_length=2, max_length=3, rng=random.Random(seed)
        )
        trie = TPSTryPP.from_workload(workload)
        for node in trie.nodes():
            assert node.queries
            assert node.support > 0
