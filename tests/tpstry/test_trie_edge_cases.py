"""Edge cases of TPSTry++ construction and the streaming query window."""


import pytest

from repro.graph import LabelledGraph
from repro.signatures import SignatureScheme
from repro.tpstry import StreamingTPSTry, TPSTryPP
from repro.workload import PatternQuery, Workload


class TestSingleVertexQueries:
    def test_single_vertex_query_contributes_root_only(self):
        trie = TPSTryPP.from_workload(
            Workload([PatternQuery("dot", LabelledGraph.from_edges({0: "a"}))])
        )
        assert len(trie) == 1
        (node,) = trie.nodes()
        assert node.is_root
        assert node.num_edges == 0

    def test_single_vertex_motifs_never_frequent_for_grouping(self):
        trie = TPSTryPP.from_workload(
            Workload([PatternQuery("dot", LabelledGraph.from_edges({0: "a"}))])
        )
        # min_edges=1 (the grouping default) excludes bare vertices.
        assert trie.frequent_motifs(0.5) == []
        assert trie.frequent_motifs(0.5, min_edges=0) != []


class TestSharedScheme:
    def test_external_scheme_reused(self):
        scheme = SignatureScheme()
        scheme.register_alphabet("ab")
        trie = TPSTryPP.from_workload(
            Workload([PatternQuery("ab", LabelledGraph.path("ab"))]),
            scheme=scheme,
        )
        # Signatures computed outside the trie resolve to its nodes.
        sig = scheme.signature_of(LabelledGraph.path("ab"))
        assert trie.node_by_signature(sig) is not None

    def test_default_mode_records_no_collisions_on_query_workloads(self):
        trie = TPSTryPP.from_workload(
            Workload(
                [
                    PatternQuery("p", LabelledGraph.path("abab")),
                    PatternQuery("c", LabelledGraph.cycle("abab")),
                ]
            ),
            authoritative=True,
        )
        assert trie.collisions == []


class TestDagShape:
    def test_total_frequency_tracks_queries(self):
        trie = TPSTryPP()
        trie.add_query(PatternQuery("a", LabelledGraph.path("ab"), 2.0))
        assert trie.total_frequency == 2.0
        trie.add_query(PatternQuery("b", LabelledGraph.path("bc"), 3.0))
        assert trie.total_frequency == 5.0
        trie.remove_query("a")
        assert trie.total_frequency == 3.0

    def test_identical_shape_different_queries_share_node(self):
        trie = TPSTryPP.from_workload(
            Workload(
                [
                    PatternQuery("q1", LabelledGraph.path("ab"), 1.0),
                    PatternQuery("q2", LabelledGraph.path("ba", start_id=5), 1.0),
                ]
            )
        )
        sig = trie.scheme.signature_of(LabelledGraph.path("ab"))
        node = trie.node_by_signature(sig)
        assert node.queries == {"q1", "q2"}
        assert trie.p_value(node) == pytest.approx(1.0)

    def test_max_motif_vertices_by_threshold(self):
        trie = TPSTryPP.from_workload(
            Workload(
                [
                    PatternQuery("small", LabelledGraph.path("ab"), 3.0),
                    PatternQuery("big", LabelledGraph.path("abcd"), 1.0),
                ]
            )
        )
        assert trie.max_motif_vertices(0.9) == 2   # only ab-level motifs
        assert trie.max_motif_vertices(0.2) == 4   # abcd now frequent


class TestStreamingWindowEdgeCases:
    def test_same_query_repeated_fills_window(self):
        stream = StreamingTPSTry(window=3)
        q = PatternQuery("q", LabelledGraph.path("ab"))
        for _ in range(5):
            stream.observe(q)
        assert len(stream) == 3
        sig = stream.trie.scheme.signature_of(LabelledGraph.path("ab"))
        node = stream.trie.node_by_signature(sig)
        assert stream.trie.p_value(node) == pytest.approx(1.0)

    def test_drift_changes_frequent_set(self):
        stream = StreamingTPSTry(window=4)
        hot = PatternQuery("hot", LabelledGraph.path("ab"))
        cold = PatternQuery("cold", LabelledGraph.path("cd"))
        for _ in range(4):
            stream.observe(hot)
        ab_sig = stream.trie.scheme.signature_of(LabelledGraph.path("ab"))
        cd_sig = stream.trie.scheme.signature_of(LabelledGraph.path("cd"))
        assert stream.trie.node_by_signature(cd_sig) is None
        for _ in range(4):
            stream.observe(cold)
        assert stream.trie.node_by_signature(ab_sig) is None
        assert stream.trie.node_by_signature(cd_sig) is not None

    def test_window_rebuild_equivalent_to_fresh_trie(self):
        # After expiry, the window trie must equal a trie built from just
        # the surviving observations (node multiset equality by signature).
        stream = StreamingTPSTry(window=2)
        q1 = PatternQuery("q1", LabelledGraph.path("ab"))
        q2 = PatternQuery("q2", LabelledGraph.path("bc"))
        q3 = PatternQuery("q3", LabelledGraph.path("cd"))
        for q in (q1, q2, q3):
            stream.observe(q)
        fresh = TPSTryPP.from_workload(Workload([q2, q3]))
        streamed_sigs = {node.signature for node in stream.trie.nodes()}
        fresh_sigs = {node.signature for node in fresh.nodes()}
        # Signatures come from different schemes; compare by motif shape.
        streamed_shapes = {
            (n.num_vertices, n.num_edges,
             tuple(sorted(n.graph.vertex_labels().values())))
            for n in stream.trie.nodes()
        }
        fresh_shapes = {
            (n.num_vertices, n.num_edges,
             tuple(sorted(n.graph.vertex_labels().values())))
            for n in fresh.nodes()
        }
        assert streamed_shapes == fresh_shapes
        assert len(streamed_sigs) == len(fresh_sigs)
