"""``Session.close()`` must be idempotent and crash-ordering-safe.

Close is the one call that always runs -- in ``finally`` blocks, in
``__exit__``, after a crash, sometimes twice -- so every teardown
ordering lands here: double close, close over dead workers, close after
a degradation, close with a durable log attached, and use-after-close
(serial execution survives; only the pool and the WAL are released).
"""

import os
import time

import pytest

from repro.api import (
    Cluster,
    ClusterConfig,
    DurabilityConfig,
    FaultPlan,
    WorkerConfig,
    WorkerFault,
)
from repro.bench.experiments import _motif_testbed
from repro.bench.scaling import default_start_method
from repro.runtime.wal import recover_store

START = os.environ.get("REPRO_START_METHOD") or default_start_method()


def parallel_session(durability=None, **worker_overrides):
    graph, workload = _motif_testbed(5, instances=8, noise=20)
    options = dict(count=2, start_method=START)
    options.update(worker_overrides)
    session = Cluster.open(
        ClusterConfig(
            partitions=4,
            method="ldg",
            seed=7,
            worker=WorkerConfig(**options),
            durability=durability or DurabilityConfig(),
        ),
        workload=workload,
    )
    session.ingest(graph)
    return session


class TestCloseIdempotence:
    def test_double_close(self):
        session = parallel_session()
        session.run_workload(executions=5, seed=1)
        pool = session.pool
        session.close()
        assert session.pool is None
        assert not pool.alive
        session.close()  # second close is a no-op, not an error
        assert session.pool is None

    def test_close_with_every_worker_already_dead(self):
        """A dead worker's pipe must not hang the shutdown: close joins
        with a bounded timeout and escalates to terminate."""
        session = parallel_session()
        session.run_workload(executions=5, seed=1)
        for handle in session.pool.handles:
            handle.process.kill()
            handle.process.join(timeout=5.0)
        began = time.perf_counter()
        session.close()
        assert time.perf_counter() - began < 30.0
        session.close()

    def test_close_after_degradation(self):
        """A session that burned its retry budget and degraded to serial
        still closes cleanly (its pool is already gone)."""
        plan = FaultPlan(
            [WorkerFault(worker_id=0, kind="kill", generation=g)
             for g in range(2)]
        )
        session = parallel_session(fault_plan=plan, max_retries=1)
        with pytest.warns(RuntimeWarning, match="degraded"):
            session.run_workload(executions=5, seed=1)
        assert session.resilience.serial_fallbacks == 1
        session.close()
        session.close()

    def test_context_manager_close_then_explicit_close(self):
        with parallel_session() as session:
            session.run_workload(executions=5, seed=1)
        session.close()  # after __exit__ already closed


class TestCloseAndDurability:
    def test_close_releases_the_wal_and_recovery_matches(self, tmp_path):
        session = parallel_session(
            durability=DurabilityConfig(
                mode="wal", wal_dir=str(tmp_path / "wal")
            )
        )
        image = session.store.export_columns()
        store = session.store
        session.close()
        assert session.wal is None
        assert store.wal_hook is None  # unhooked, not dangling
        recovered, info = recover_store(tmp_path / "wal", partitions=4)
        assert recovered.export_columns() == image
        # The folded counters survive the close.
        assert session.resilience.wal_records > 0
        session.close()

    def test_recovered_session_closes_cleanly(self, tmp_path):
        session = parallel_session(
            durability=DurabilityConfig(
                mode="wal", wal_dir=str(tmp_path / "wal")
            )
        )
        session.close()
        recovered = Cluster.recover(tmp_path / "wal")
        recovered.close()
        recovered.close()


class TestUseAfterClose:
    def test_serial_execution_survives_close(self):
        session = parallel_session()
        before = session.run_workload(executions=5, seed=1, workers=1)
        session.close()
        after = session.run_workload(executions=5, seed=1, workers=1)
        assert after == before

    def test_parallel_call_after_close_respawns(self):
        """Close is not a poison pill: the next parallel call simply
        provisions a fresh pool."""
        session = parallel_session()
        serial = session.run_workload(executions=5, seed=1, workers=1)
        session.close()
        parallel = session.run_workload(executions=5, seed=1)
        assert parallel == serial
        assert session.pool is not None and session.pool.alive
        session.close()
