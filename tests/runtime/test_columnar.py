"""Columnar codec: the store's flat-buffer hot-path wire format."""

import random

import pytest

from repro.api import Cluster, ClusterConfig
from repro.cluster.columnar import (
    FLAG_INT_VERTICES,
    HEADER,
    MAGIC,
    STORE_COLUMNS_SCHEMA,
    ColumnsFormatError,
    decode_columns,
    encode_columns,
    peek_header,
)
from repro.cluster.store import DistributedGraphStore
from repro.graph.labelled import LabelledGraph
from repro.workload import PatternQuery, Workload


def small_session(method="ldg", partitions=3, seed=0):
    workload = Workload([PatternQuery("ab", LabelledGraph.path("ab"))])
    session = Cluster.open(
        ClusterConfig(partitions=partitions, method=method, seed=seed),
        workload=workload,
    )
    rng = random.Random(seed)
    graph = LabelledGraph()
    for v in range(30):
        graph.add_vertex(v, rng.choice("abc"))
    for v in range(1, 30):
        graph.add_edge(v, rng.randrange(v))
    session.ingest(graph)
    return session


def assert_stores_equivalent(original, rebuilt):
    assert rebuilt.graph == original.graph
    # Iteration/index orders drive executor determinism: they must
    # survive the round trip exactly, not just set-wise.
    assert list(rebuilt.graph.vertices()) == list(original.graph.vertices())
    for label in original.graph.labels():
        assert rebuilt.vertices_with_label(label) == (
            original.vertices_with_label(label)
        )
    for vertex in original.graph.vertices():
        assert rebuilt.sorted_neighbours(vertex) == (
            original.sorted_neighbours(vertex)
        )
        assert rebuilt.partition_of(vertex) == original.partition_of(vertex)
        assert rebuilt.replicas_of(vertex) == original.replicas_of(vertex)
    assert rebuilt.assignment.sizes() == original.assignment.sizes()
    assert rebuilt.assignment.capacity == original.assignment.capacity


def tiny_store(vertices, edges, *, k=2, capacity=16):
    """Hand-built store (no session machinery) for edge-case layouts."""
    store = DistributedGraphStore.incremental(k, capacity)
    for vertex, label, partition in vertices:
        store.add_vertex(vertex, label)
        if partition is not None:
            store.assign_vertex(vertex, partition)
    for u, v in edges:
        store.add_edge(u, v)
    return store


class TestRoundTrip:
    def test_session_store_round_trips(self):
        store = small_session().store
        rebuilt = DistributedGraphStore.import_columns(store.export_columns())
        assert_stores_equivalent(store, rebuilt)

    def test_round_trip_preserves_replicas(self):
        store = small_session().store
        victims = list(store.graph.vertices())[:4]
        for victim in victims:
            assert store.add_replica(victim, (store.partition_of(victim) + 1)
                                     % store.k)
        rebuilt = DistributedGraphStore.import_columns(store.export_columns())
        assert_stores_equivalent(store, rebuilt)
        for victim in victims:
            assert rebuilt.replicas_of(victim) == store.replicas_of(victim)

    def test_round_trip_after_removals(self):
        """Slot recycling must not leak into the image: a rebuilt store
        behaves identically even after removals and re-adds."""
        session = small_session()
        store = session.store
        victims = list(store.graph.vertices())[:5]
        session.retract(vertices=victims)
        rebuilt = DistributedGraphStore.import_columns(store.export_columns())
        assert_stores_equivalent(store, rebuilt)

    def test_image_is_positional_not_slot_bound(self):
        """Decode-then-re-encode is a byte fixed point even when the
        source store carries recycled slots (same contract as
        ``export_state``): the image speaks positions, so a densely
        rebuilt replica re-encodes to exactly the bytes it was born
        from, no matter the source's slot history."""
        session = small_session()
        store = session.store
        session.retract(vertices=list(store.graph.vertices())[:3])
        once = DistributedGraphStore.import_columns(store.export_columns())
        twice = DistributedGraphStore.import_columns(once.export_columns())
        assert once.export_columns() == twice.export_columns()

    def test_matches_export_state_semantics(self):
        """Both codecs rebuild the same store (the columnar image is a
        faster wire format, not different semantics)."""
        store = small_session().store
        via_state = DistributedGraphStore.import_state(store.export_state())
        via_columns = DistributedGraphStore.import_columns(
            store.export_columns()
        )
        assert_stores_equivalent(via_state, via_columns)

    def test_decodes_from_memoryview(self):
        """The zero-copy path: decoding a memoryview slice (what workers
        do over a shared segment) equals decoding the bytes."""
        store = small_session().store
        payload = store.export_columns()
        framed = b"\x00" * 7 + payload + b"\x00" * 3
        view = memoryview(framed)[7:7 + len(payload)]
        rebuilt = decode_columns(view)
        assert_stores_equivalent(store, rebuilt)

    def test_unassigned_vertices_survive(self):
        """A vertex that arrived but was never placed (the window of a
        streaming ingest) must stay unassigned after the round trip."""
        store = tiny_store(
            [(1, "a", 0), (2, "b", None), (3, "a", 1)], [(1, 2), (2, 3)]
        )
        rebuilt = decode_columns(encode_columns(store))
        assert rebuilt.graph == store.graph
        assert rebuilt.assignment.partition_of(2) is None
        assert rebuilt.assignment.partition_of(1) == 0
        assert rebuilt.assignment.partition_of(3) == 1
        assert rebuilt.assignment.sizes() == store.assignment.sizes()

    def test_non_int_vertex_ids_fall_back_to_pickle(self):
        store = tiny_store(
            [("alice", "a", 0), ("bob", "b", 1), (7, "a", 0)],
            [("alice", "bob"), ("bob", 7)],
        )
        payload = encode_columns(store)
        assert not peek_header(payload).flags & FLAG_INT_VERTICES
        rebuilt = decode_columns(payload)
        assert_stores_equivalent(store, rebuilt)

    def test_huge_int_ids_fall_back_to_pickle(self):
        big = 1 << 70  # does not fit the int64 fast-path column
        store = tiny_store([(big, "a", 0), (1, "b", 1)], [(big, 1)])
        payload = encode_columns(store)
        assert not peek_header(payload).flags & FLAG_INT_VERTICES
        assert_stores_equivalent(store, decode_columns(payload))

    def test_empty_store(self):
        store = DistributedGraphStore.incremental(3, 10)
        rebuilt = decode_columns(encode_columns(store))
        assert rebuilt.k == 3
        assert rebuilt.assignment.capacity == 10
        assert rebuilt.graph.num_vertices == 0

    def test_deterministic_bytes(self):
        store = small_session().store
        assert store.export_columns() == store.export_columns()


class TestHeader:
    def test_peek_reports_store_shape(self):
        store = small_session().store
        header = peek_header(store.export_columns())
        assert header.k == store.k
        assert header.capacity == store.assignment.capacity
        assert header.num_vertices == store.graph.num_vertices
        assert header.num_edges == store.graph.num_edges
        assert header.flags & FLAG_INT_VERTICES

    def test_short_buffer_rejected(self):
        with pytest.raises(ColumnsFormatError, match="shorter"):
            peek_header(b"LOOM")

    def test_foreign_magic_rejected(self):
        payload = small_session().store.export_columns()
        mangled = b"NOTCOLS1" + payload[len(MAGIC):]
        with pytest.raises(ColumnsFormatError, match=STORE_COLUMNS_SCHEMA):
            peek_header(mangled)

    def test_future_version_rejected(self):
        payload = small_session().store.export_columns()
        mangled = MAGIC + b"\xff\x7f" + payload[len(MAGIC) + 2:]
        with pytest.raises(ColumnsFormatError, match="magic/version"):
            peek_header(mangled)

    def test_truncated_image_rejected(self):
        payload = small_session().store.export_columns()
        with pytest.raises(ColumnsFormatError, match="truncated"):
            decode_columns(payload[:HEADER.size + 8])

    def test_vertex_count_mismatch_rejected(self):
        store = tiny_store([(1, "a", 0), (2, "b", 1)], [(1, 2)])
        payload = bytearray(encode_columns(store))
        # Claim 3 vertices in the header but ship columns for 2: the
        # int64 vertex read then eats the label-length column, and the
        # per-section length checks must catch the lie before any
        # half-built store escapes.
        lied = HEADER.pack(MAGIC, 1, FLAG_INT_VERTICES, store.k,
                           store.assignment.capacity, 3, 1, 2, 0, 16, 2)
        payload[:HEADER.size] = lied
        with pytest.raises(ColumnsFormatError):
            decode_columns(bytes(payload))


class TestScale:
    def test_larger_random_store_round_trips(self):
        rng = random.Random(11)
        store = DistributedGraphStore.incremental(5, 200)
        for v in range(400):
            store.add_vertex(v, rng.choice("abcdef"))
            store.assign_vertex(v, rng.randrange(5))
        for v in range(1, 400):
            store.add_edge(v, rng.randrange(v))
        for v in range(0, 400, 17):
            store.add_replica(v, (store.partition_of(v) + 1) % 5)
        rebuilt = DistributedGraphStore.import_columns(store.export_columns())
        assert_stores_equivalent(store, rebuilt)
