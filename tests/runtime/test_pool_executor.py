"""Worker pool + sharded executor: serial-identical results, clean reaping.

All pools here use the ``fork`` start method where the platform offers
it -- booting a forked worker is milliseconds, so the whole suite stays
fast.  ``spawn`` is exercised end to end by ``repro.runtime.smoke``
(wired into CI's bench-smoke job) and by the runtime's own defaults.
"""

import random

import pytest

from repro.api import Cluster, ClusterConfig, WorkerConfig
from repro.bench.experiments import _motif_testbed
from repro.bench.scaling import default_start_method
from repro.cluster.executor import DistributedQueryExecutor, run_workload
from repro.runtime import (
    ShardSnapshot,
    ShardedExecutor,
    WorkerPool,
    run_sharded_workload,
)

START = default_start_method()


@pytest.fixture(scope="module")
def placed():
    graph, workload = _motif_testbed(3, instances=12, noise=40)
    session = Cluster.open(
        ClusterConfig(partitions=4, method="ldg", seed=3), workload=workload
    )
    session.ingest(graph)
    return session, workload


@pytest.fixture(scope="module")
def pool(placed):
    session, _ = placed
    snapshot = ShardSnapshot.of(session.store, version=1)
    with WorkerPool(
        snapshot, workers=2, start_method=START, timeout=60.0
    ) as live:
        yield live


class TestShardedExecution:
    def test_single_query_matches_serial(self, placed, pool):
        session, workload = placed
        serial = DistributedQueryExecutor(session.store)
        sharded = ShardedExecutor(session.store, pool, fallback=False)
        for query in workload:
            ours = sharded.execute(query)
            reference = serial.execute(query)
            assert ours.matches == reference.matches
            assert ours.ledger.local == reference.ledger.local
            assert ours.ledger.remote == reference.ledger.remote
            assert ours.fully_local == reference.fully_local

    def test_workload_stats_identical(self, placed, pool):
        session, workload = placed
        serial = run_workload(
            session.store, workload, executions=25, rng=random.Random(11)
        )
        parallel, fanout = run_sharded_workload(
            session.store,
            workload,
            pool,
            executions=25,
            rng=random.Random(11),
            fallback=False,
        )
        assert parallel.executions == serial.executions
        assert parallel.matches == serial.matches
        assert parallel.fully_local == serial.fully_local
        assert parallel.ledger.local == serial.ledger.local
        assert parallel.ledger.remote == serial.ledger.remote
        assert fanout.executions == 25
        assert len(fanout.worker_cpu_seconds) == pool.worker_count
        assert not fanout.fallback_used

    def test_edge_tracking_merges_exactly(self, placed, pool):
        session, workload = placed
        serial = run_workload(
            session.store,
            workload,
            executions=15,
            rng=random.Random(5),
            track_edges=True,
        )
        parallel, _ = run_sharded_workload(
            session.store,
            workload,
            pool,
            executions=15,
            rng=random.Random(5),
            track_edges=True,
            fallback=False,
        )
        assert parallel.ledger.edge_counts == serial.ledger.edge_counts

    def test_replicas_respected_by_workers(self, placed, pool):
        """Replica-aware locality must survive the snapshot: replicate,
        refresh the pool, and the merged remote counts still match."""
        session, workload = placed
        store = session.store
        report = session.replicate(executions=20, budget=10, seed=2)
        assert report.replicas_added > 0
        pool.refresh(ShardSnapshot.of(store, version=2))
        serial = run_workload(
            store, workload, executions=20, rng=random.Random(13)
        )
        parallel, _ = run_sharded_workload(
            store, workload, pool,
            executions=20, rng=random.Random(13), fallback=False,
        )
        assert parallel.ledger.remote == serial.ledger.remote
        assert parallel.ledger.local == serial.ledger.local


class TestPoolLifecycle:
    def test_pool_caps_workers_at_partition_count(self, placed):
        session, _ = placed
        snapshot = ShardSnapshot.of(session.store)
        with WorkerPool(
            snapshot, workers=32, start_method=START, timeout=60.0
        ) as pool:
            assert pool.worker_count == session.config.partitions
            owned = [p for h in pool.handles for p in h.partitions]
            assert sorted(owned) == list(range(session.config.partitions))

    def test_close_reaps_processes(self, placed):
        session, _ = placed
        snapshot = ShardSnapshot.of(session.store)
        pool = WorkerPool(
            snapshot, workers=2, start_method=START, timeout=60.0
        )
        processes = [handle.process for handle in pool.handles]
        assert all(process.is_alive() for process in processes)
        pool.close()
        pool.close()  # idempotent
        assert not any(process.is_alive() for process in processes)
        assert not pool.alive

    def test_rejects_bad_parameters(self, placed):
        session, _ = placed
        snapshot = ShardSnapshot.of(session.store)
        with pytest.raises(ValueError, match="workers"):
            WorkerPool(snapshot, workers=0)
        with pytest.raises(ValueError, match="start method"):
            WorkerPool(snapshot, workers=1, start_method="teleport")
        with pytest.raises(ValueError, match="timeout"):
            WorkerPool(snapshot, workers=1, timeout=0.0)


class TestSessionIntegration:
    def test_session_parallel_calls_match_serial(self):
        graph, workload = _motif_testbed(7, instances=10, noise=30)
        session = Cluster.open(
            ClusterConfig(
                partitions=4,
                method="ldg",
                seed=7,
                worker=WorkerConfig(
                    count=2, start_method=START, fallback_serial=False
                ),
            ),
            workload=workload,
        )
        try:
            session.ingest(graph)
            serial_report = session.run_workload(executions=20, seed=1,
                                                 workers=1)
            parallel_report = session.run_workload(executions=20, seed=1)
            assert parallel_report == serial_report
            for query in workload:
                assert session.query(query, workers=2) == session.query(
                    query, workers=1
                )
            assert session.pool is not None and session.pool.alive
        finally:
            session.close()
        assert session.pool is None

    def test_ingest_reports_actual_pool_size(self):
        """Requesting more workers than partitions caps the pool; the
        report must carry the real process count, not the request."""
        graph, workload = _motif_testbed(11, instances=6, noise=20)
        with Cluster.open(
            ClusterConfig(
                partitions=3,
                method="ldg",
                seed=11,
                worker=WorkerConfig(count=2, start_method=START),
            ),
            workload=workload,
        ) as session:
            report = session.ingest(graph, workers=8)
            assert report.workers == 3
            assert session.pool.worker_count == 3

    def test_pool_refreshes_after_retract(self):
        """A mutation bumps the store version; the next parallel call
        re-primes the workers instead of answering from stale shards."""
        graph, workload = _motif_testbed(9, instances=8, noise=25)
        with Cluster.open(
            ClusterConfig(
                partitions=3,
                method="ldg",
                seed=9,
                worker=WorkerConfig(
                    count=2, start_method=START, fallback_serial=False
                ),
            ),
            workload=workload,
        ) as session:
            session.ingest(graph)
            before = session.run_workload(executions=15, seed=4)
            victims = [v for v in session.graph.vertices()][:4]
            session.retract(vertices=victims)
            serial = session.run_workload(executions=15, seed=4, workers=1)
            parallel = session.run_workload(executions=15, seed=4)
            assert parallel == serial
            assert parallel != before  # the retraction really changed state
