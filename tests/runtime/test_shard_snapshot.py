"""Shard snapshot export/import: the runtime's byte-identity foundation."""

import pickle
import random

import pytest

from repro.api import Cluster, ClusterConfig
from repro.cluster.store import DistributedGraphStore, STORE_STATE_SCHEMA
from repro.exceptions import PartitioningError
from repro.graph.labelled import LabelledGraph
from repro.runtime import ShardSnapshot, owned_partitions
from repro.workload import PatternQuery, Workload


def small_session(method="ldg", partitions=3, seed=0):
    workload = Workload([PatternQuery("ab", LabelledGraph.path("ab"))])
    session = Cluster.open(
        ClusterConfig(partitions=partitions, method=method, seed=seed),
        workload=workload,
    )
    rng = random.Random(seed)
    graph = LabelledGraph()
    for v in range(30):
        graph.add_vertex(v, rng.choice("abc"))
    for v in range(1, 30):
        graph.add_edge(v, rng.randrange(v))
    session.ingest(graph)
    return session


def assert_stores_equivalent(original, rebuilt):
    assert rebuilt.graph == original.graph
    # Iteration/index orders drive executor determinism: they must
    # survive the round trip exactly, not just set-wise.
    assert list(rebuilt.graph.vertices()) == list(original.graph.vertices())
    for label in original.graph.labels():
        assert rebuilt.vertices_with_label(label) == (
            original.vertices_with_label(label)
        )
    for vertex in original.graph.vertices():
        assert rebuilt.sorted_neighbours(vertex) == (
            original.sorted_neighbours(vertex)
        )
        assert rebuilt.partition_of(vertex) == original.partition_of(vertex)
        assert rebuilt.replicas_of(vertex) == original.replicas_of(vertex)
    assert rebuilt.assignment.sizes() == original.assignment.sizes()
    assert rebuilt.assignment.capacity == original.assignment.capacity


class TestExportImport:
    def test_round_trip(self):
        store = small_session().store
        rebuilt = DistributedGraphStore.import_state(store.export_state())
        assert_stores_equivalent(store, rebuilt)

    def test_round_trip_preserves_replicas(self):
        store = small_session().store
        victim = next(iter(store.graph.vertices()))
        target = (store.partition_of(victim) + 1) % store.k
        assert store.add_replica(victim, target)
        rebuilt = DistributedGraphStore.import_state(store.export_state())
        assert rebuilt.replicas_of(victim) == frozenset({target})
        assert not rebuilt.is_remote_from(target, victim)

    def test_round_trip_after_removals(self):
        """Slot recycling in the source store must not leak into the
        export: a rebuilt store behaves identically."""
        session = small_session()
        store = session.store
        victims = [v for v in store.graph.vertices()][:5]
        session.retract(vertices=victims)
        rebuilt = DistributedGraphStore.import_state(store.export_state())
        assert_stores_equivalent(store, rebuilt)

    def test_rejects_wrong_schema(self):
        store = small_session().store
        state = store.export_state()
        state["schema"] = "something/else"
        with pytest.raises(PartitioningError, match=STORE_STATE_SCHEMA):
            DistributedGraphStore.import_state(state)

    def test_export_is_positional_not_slot_bound(self):
        """Two stores with the same resident state but different slot
        histories export identical payloads."""
        session = small_session()
        store = session.store
        victims = [v for v in store.graph.vertices()][:3]
        session.retract(vertices=victims)
        once = DistributedGraphStore.import_state(store.export_state())
        twice = DistributedGraphStore.import_state(once.export_state())
        assert once.export_state() == twice.export_state()


class TestShardSnapshot:
    def test_snapshot_pickles_and_restores(self):
        store = small_session().store
        snapshot = ShardSnapshot.of(store, version=7)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.version == 7
        assert clone.k == store.k
        assert clone.num_vertices == store.graph.num_vertices
        assert clone.num_edges == store.graph.num_edges
        assert_stores_equivalent(store, clone.restore())

    def test_foreign_schema_is_a_typed_refusal(self):
        """A snapshot minted by some other (future) runtime must fail
        with a typed error naming both schemas -- before any decode
        touches the payload."""
        import dataclasses

        from repro.runtime import SHARD_SNAPSHOT_SCHEMA, SnapshotSchemaError

        snapshot = ShardSnapshot.of(small_session().store, version=1)
        alien = dataclasses.replace(
            snapshot, schema="loom-repro/shard-snapshot/v99"
        )
        with pytest.raises(SnapshotSchemaError) as caught:
            alien.restore()
        message = str(caught.value)
        assert "loom-repro/shard-snapshot/v99" in message
        assert SHARD_SNAPSHOT_SCHEMA in message
        # Callers that predate the typed error catch ValueError.
        assert isinstance(caught.value, ValueError)

    def test_foreign_schema_refusal_covers_shape_properties(self):
        from repro.runtime import SnapshotSchemaError

        import dataclasses

        snapshot = ShardSnapshot.of(small_session().store)
        alien = dataclasses.replace(snapshot, schema="foreign")
        with pytest.raises(SnapshotSchemaError):
            alien.num_vertices


class TestOwnedPartitions:
    @pytest.mark.parametrize("k", [1, 3, 8])
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_ownership_partitions_the_partitions(self, k, workers):
        slices = [owned_partitions(k, workers, w) for w in range(workers)]
        flat = [p for partitions in slices for p in partitions]
        assert sorted(flat) == list(range(k))
        # Round-robin keeps the slices within one partition of even.
        sizes = [len(partitions) for partitions in slices]
        assert max(sizes) - min(sizes) <= 1
