"""Delta refresh: journal semantics, replay equivalence, pool protocol.

The contract under test, end to end: a worker replica that was
byte-equivalent to the coordinator's store at version ``v`` and replays
the journalled ops ``v -> v'`` through :func:`apply_delta` is
byte-equivalent at ``v'`` -- and the pool machinery only ever ships
deltas that satisfy that precondition, skipping no-op refreshes
entirely and degrading to full snapshots (or a respawn) everywhere the
precondition cannot be proven.
"""

import random

import pytest

from repro.api import Cluster, ClusterConfig, WorkerConfig
from repro.bench.scaling import default_start_method
from repro.cluster.executor import run_workload
from repro.cluster.store import DistributedGraphStore
from repro.exceptions import PartitioningError, SessionError
from repro.graph.labelled import LabelledGraph
from repro.runtime import (
    DeltaRefresh,
    ShardSnapshot,
    WorkerCrashError,
    WorkerPool,
    apply_delta,
)
from repro.runtime.executor import run_sharded_workload
from repro.runtime.mailbox import RefreshRequest
from repro.runtime.worker import _handle_refresh
from repro.workload import PatternQuery, Workload

START = default_start_method()


def small_workload():
    return Workload([PatternQuery("ab", LabelledGraph.path("ab"))])


def small_session(partitions=3, seed=0, worker=None):
    session = Cluster.open(
        ClusterConfig(
            partitions=partitions,
            method="ldg",
            seed=seed,
            worker=worker or WorkerConfig(),
        ),
        workload=small_workload(),
    )
    rng = random.Random(seed)
    graph = LabelledGraph()
    for v in range(30):
        graph.add_vertex(v, rng.choice("abc"))
    for v in range(1, 30):
        graph.add_edge(v, rng.randrange(v))
    session.ingest(graph)
    return session


class TestJournal:
    def test_disabled_by_default(self):
        store = small_session().store
        assert not store.journal_enabled
        assert store.drain_journal() is None

    def test_effective_mutations_tick_and_journal_in_order(self):
        store = DistributedGraphStore.incremental(2, 8)
        store.enable_journal(16)
        before = store.mutation_ticks
        store.add_vertex(1, "a")
        store.add_vertex(2, "b")
        store.add_edge(1, 2)
        store.assign_vertex(1, 0)
        store.assign_vertex(2, 1)
        store.move_vertex(2, 0)
        assert store.mutation_ticks == before + 6
        assert store.drain_journal() == (
            ("v+", 1, "a"),
            ("v+", 2, "b"),
            ("e+", 1, 2),
            ("a", 1, 0),
            ("a", 2, 1),
            ("m", 2, 0),
        )

    def test_noop_mutations_neither_tick_nor_journal(self):
        """The guts of the no-op-refresh fix: a mutation that changes
        nothing must not advance the version, or the session would ship
        content-free refresh broadcasts."""
        store = DistributedGraphStore.incremental(2, 8)
        store.enable_journal(16)
        store.add_vertex(1, "a")
        store.add_vertex(2, "b")
        store.add_edge(1, 2)
        store.assign_vertex(1, 0)
        ticks = store.mutation_ticks
        ops = store.drain_journal()
        store.add_vertex(1, "a")      # resident, same label
        store.add_edge(1, 2)          # resident edge
        store.add_edge(2, 1)          # same edge, other spelling
        store.move_vertex(1, 0)       # already there
        store.clear_replicas()        # nothing to drop
        assert store.mutation_ticks == ticks
        assert store.drain_journal() == ops

    def test_drain_does_not_restart(self):
        store = DistributedGraphStore.incremental(2, 8)
        store.enable_journal(16)
        store.add_vertex(1, "a")
        assert store.drain_journal() == (("v+", 1, "a"),)
        assert store.drain_journal() == (("v+", 1, "a"),)
        store.restart_journal()
        assert store.drain_journal() == ()

    def test_overflow_empties_log_until_restart(self):
        store = DistributedGraphStore.incremental(2, 8)
        store.enable_journal(2)
        for v in range(4):
            store.add_vertex(v, "a")
        assert store.drain_journal() is None          # overflowed
        store.add_vertex(9, "a")                      # still counted...
        assert store.mutation_ticks == 5              # ...by the version
        store.restart_journal()
        store.add_vertex(10, "b")
        assert store.drain_journal() == (("v+", 10, "b"),)

    def test_adopt_assignment_invalidates_journal(self):
        """A wholesale assignment swap (offline ingest) cannot be
        expressed as ops: it must tick once and poison the log so the
        next refresh is a full snapshot."""
        session = small_session()
        store = session.store
        store.enable_journal(64)
        ticks = store.mutation_ticks
        rebuilt = DistributedGraphStore.import_columns(store.export_columns())
        store.adopt_assignment(rebuilt.assignment)
        assert store.mutation_ticks == ticks + 1
        assert store.drain_journal() is None
        store.restart_journal()
        assert store.drain_journal() == ()

    def test_retract_assignment_journals_only_real_drops(self):
        store = DistributedGraphStore.incremental(2, 8)
        store.enable_journal(16)
        store.add_vertex(1, "a")
        store.assign_vertex(1, 0)
        assert store.retract_assignment(1) == 0
        assert store.retract_assignment(1) is None    # already vacated
        assert store.drain_journal() == (
            ("v+", 1, "a"), ("a", 1, 0), ("p-", 1),
        )

    def test_journal_limit_must_be_positive(self):
        store = DistributedGraphStore.incremental(2, 8)
        with pytest.raises(PartitioningError):
            store.enable_journal(0)

    def test_disable_journal(self):
        store = DistributedGraphStore.incremental(2, 8)
        store.enable_journal(4)
        store.add_vertex(1, "a")
        store.disable_journal()
        assert not store.journal_enabled
        assert store.drain_journal() is None


def assert_equivalent(original, rebuilt):
    """Semantic equivalence, including every order the executor's
    determinism rides on (iteration, label index, sorted adjacency)."""
    assert rebuilt.graph == original.graph
    assert list(rebuilt.graph.vertices()) == list(original.graph.vertices())
    for label in original.graph.labels():
        assert rebuilt.vertices_with_label(label) == (
            original.vertices_with_label(label)
        )
    for vertex in original.graph.vertices():
        assert rebuilt.sorted_neighbours(vertex) == (
            original.sorted_neighbours(vertex)
        )
        assert rebuilt.partition_of(vertex) == original.partition_of(vertex)
        assert rebuilt.replicas_of(vertex) == original.replicas_of(vertex)
    assert rebuilt.assignment.sizes() == original.assignment.sizes()
    assert rebuilt.assignment.capacity == original.assignment.capacity


def churn(s):
    """Removals, slot-recycled re-adds, a move and a replica -- every
    journalled op family in one mutation burst."""
    vertices = list(s.graph.vertices())
    doomed = vertices[:4]
    homes = {vertex: s.partition_of(vertex) for vertex in doomed}
    for vertex in doomed:
        s.remove_vertex(vertex)
    for vertex in doomed[:2]:                      # recycled slots
        s.add_vertex(vertex, "c")
        s.assign_vertex(vertex, homes[vertex])     # seat just freed
    s.add_edge(doomed[0], doomed[1])
    survivor = vertices[10]
    sizes = s.assignment.sizes()
    target = next(
        p for p in range(s.k)
        if p != s.partition_of(survivor) and sizes[p] < s.assignment.capacity
    )
    s.move_vertex(survivor, target)
    s.add_replica(vertices[12], (s.partition_of(vertices[12]) + 1) % s.k)


class TestApplyDelta:
    def mirror(self, store):
        return DistributedGraphStore.import_columns(store.export_columns())

    def delta_from(self, store, mutate):
        """Journal ``mutate`` on ``store`` and package it as a delta."""
        store.enable_journal(256)
        from_version = store.mutation_ticks
        mutate(store)
        ops = store.drain_journal()
        assert ops is not None
        return DeltaRefresh(
            from_version=from_version,
            to_version=store.mutation_ticks,
            capacity=store.assignment.capacity,
            ops=ops,
        )

    def test_replay_tracks_the_coordinator_through_churn(self):
        """A replica that replays the journalled ops ends up equivalent
        to the mutated coordinator -- orders included, so its query
        answers cannot drift."""
        store = small_session().store
        replica = self.mirror(store)
        delta = self.delta_from(store, churn)
        apply_delta(replica, delta)
        assert_equivalent(store, replica)

    def test_replay_is_byte_deterministic_across_replicas(self):
        """Two replicas decoding the same image and replaying the same
        delta are *byte*-identical -- the property cross-worker answer
        dedup stands on (all workers took exactly this path)."""
        store = small_session().store
        one, two = self.mirror(store), self.mirror(store)
        delta = self.delta_from(store, churn)
        apply_delta(one, delta)
        apply_delta(two, delta)
        assert one.export_columns() == two.export_columns()
        assert_equivalent(store, one)

    def test_replay_reproduces_clear_replicas(self):
        store = small_session().store
        anchor = next(iter(store.graph.vertices()))
        store.add_replica(anchor, (store.partition_of(anchor) + 1) % store.k)
        replica = self.mirror(store)

        def mutate(s):
            s.clear_replicas()
            s.add_replica(anchor, (s.partition_of(anchor) + 2) % s.k)

        delta = self.delta_from(store, mutate)
        apply_delta(replica, delta)
        assert_equivalent(store, replica)

    def test_replay_grows_capacity_first(self):
        """Capacity growth is not journalled (it is not an op); the
        delta carries the target capacity so replicas grow before any
        op could hit the old ceiling."""
        store = DistributedGraphStore.incremental(2, 2)
        store.add_vertex(1, "a")
        store.assign_vertex(1, 0)
        clone = self.mirror(store)
        store.assignment.grow_capacity(4)
        store.enable_journal(16)
        from_version = store.mutation_ticks
        store.add_vertex(2, "a")
        store.assign_vertex(2, 0)
        store.add_vertex(3, "a")
        store.assign_vertex(3, 0)    # over the clone's old capacity of 2
        delta = DeltaRefresh(
            from_version=from_version,
            to_version=store.mutation_ticks,
            capacity=store.assignment.capacity,
            ops=store.drain_journal(),
        )
        apply_delta(clone, delta)
        assert clone.assignment.capacity == 4
        assert clone.export_columns() == store.export_columns()

    def test_unknown_op_tag_raises(self):
        store = small_session().store
        clone = self.mirror(store)
        bogus = DeltaRefresh(
            from_version=0, to_version=1,
            capacity=store.assignment.capacity, ops=(("??", 1),),
        )
        with pytest.raises(ValueError, match="unknown op tag"):
            apply_delta(clone, bogus)


class TestWorkerHandleRefresh:
    def test_version_mismatch_refused_without_touching_state(self):
        store = small_session().store
        replica = DistributedGraphStore.import_columns(store.export_columns())
        image_before = replica.export_columns()
        delta = DeltaRefresh(
            from_version=3, to_version=5,
            capacity=store.assignment.capacity,
            ops=(("v+", 999, "a"), ("v+", 998, "a")),
        )
        out_store, out_version, response = _handle_refresh(
            replica, 7, RefreshRequest(delta=delta), worker_id=0
        )
        assert response.applied is False
        assert response.resident_version == 7
        assert out_store is replica
        assert out_version == 7
        assert replica.export_columns() == image_before

    def test_matching_delta_applies(self):
        store = small_session().store
        replica = DistributedGraphStore.import_columns(store.export_columns())
        delta = DeltaRefresh(
            from_version=7, to_version=9,
            capacity=store.assignment.capacity,
            ops=(("v+", 999, "a"), ("v+", 998, "b")),
        )
        out_store, out_version, response = _handle_refresh(
            replica, 7, RefreshRequest(delta=delta), worker_id=0
        )
        assert response.applied is True
        assert out_version == 9
        assert out_store.graph.has_vertex(999)


class TestPoolProtocol:
    def primed(self, session, workers=2):
        store = session.store
        snapshot = ShardSnapshot.of(store, version=store.mutation_ticks)
        return WorkerPool(
            snapshot, workers=workers, start_method=START, timeout=60.0
        )

    def test_version_equal_refresh_is_skipped(self):
        """The no-op regression: re-broadcasting an unchanged snapshot
        must cost nothing -- no round, no counter, no segment."""
        session = small_session()
        with self.primed(session) as pool:
            published = len(pool.segments.history)
            same = ShardSnapshot.of(
                session.store, version=session.store.mutation_ticks
            )
            assert pool.refresh(same) == 0.0
            assert pool.refreshes == 0
            assert len(pool.segments.history) == published
            assert pool.alive

    def test_version_equal_delta_is_skipped(self):
        session = small_session()
        store = session.store
        with self.primed(session) as pool:
            noop = DeltaRefresh(
                from_version=store.mutation_ticks,
                to_version=store.mutation_ticks,
                capacity=store.assignment.capacity,
                ops=(),
            )
            assert pool.refresh_delta(noop) == 0.0
            assert pool.delta_refreshes == 0
            assert pool.alive

    def test_delta_refresh_end_to_end_preserves_parity(self):
        """Mutate, ship the delta, and the delta-replayed workers must
        answer byte-identically to serial execution on the mutated
        store."""
        session = small_session()
        store = session.store
        workload = small_workload()
        with self.primed(session) as pool:
            store.enable_journal(64)
            from_version = store.mutation_ticks
            victims = list(store.graph.vertices())[:3]
            for vertex in victims:
                store.remove_vertex(vertex)
            delta = DeltaRefresh(
                from_version=from_version,
                to_version=store.mutation_ticks,
                capacity=store.assignment.capacity,
                ops=store.drain_journal(),
            )
            pool.refresh_delta(delta)
            assert pool.delta_refreshes == 1
            assert pool.version == store.mutation_ticks
            serial = run_workload(
                store, workload, executions=30, rng=random.Random(5)
            )
            parallel, _ = run_sharded_workload(
                store, workload, pool,
                executions=30, rng=random.Random(5), fallback=False,
            )
            assert (parallel.executions, parallel.matches,
                    parallel.fully_local, parallel.ledger.local,
                    parallel.ledger.remote) == (
                serial.executions, serial.matches, serial.fully_local,
                serial.ledger.local, serial.ledger.remote)

    def test_version_gap_closes_pool(self):
        session = small_session()
        store = session.store
        with self.primed(session) as pool:
            gapped = DeltaRefresh(
                from_version=pool.version + 3,
                to_version=pool.version + 4,
                capacity=store.assignment.capacity,
                ops=(("v+", 999, "a"),),
            )
            with pytest.raises(WorkerCrashError, match="primed at"):
                pool.refresh_delta(gapped)
            assert not pool.alive


class TestSessionRefreshPolicy:
    def worker_config(self, **overrides):
        options = dict(
            count=2, start_method=START, fallback_serial=False,
        )
        options.update(overrides)
        return WorkerConfig(**options)

    def test_unchanged_store_never_rebroadcasts(self):
        session = small_session(worker=self.worker_config())
        try:
            first = session.run_workload(executions=20, seed=3)
            pool = session.pool
            assert pool is not None
            # Repeat queries against an unchanged store: same pool, no
            # refresh round of either kind.
            again = session.run_workload(executions=20, seed=3)
            assert again == first
            assert session.pool is pool
            assert pool.refreshes == 0
            assert pool.delta_refreshes == 0
        finally:
            session.close()

    def test_failed_retract_does_not_refresh(self):
        """A retraction that validates-and-raises leaves the store
        untouched; the next query must not pay any refresh."""
        session = small_session(worker=self.worker_config())
        try:
            session.run_workload(executions=20, seed=3)
            pool = session.pool
            with pytest.raises(SessionError):
                session.retract(vertices=[424242])
            session.run_workload(executions=20, seed=3)
            assert session.pool is pool
            assert pool.refreshes == 0
            assert pool.delta_refreshes == 0
        finally:
            session.close()

    def test_real_retract_delta_refreshes_resident_pool(self):
        session = small_session(worker=self.worker_config())
        try:
            session.run_workload(executions=20, seed=3)
            pool = session.pool
            victim = next(iter(session.graph.vertices()))
            session.retract(vertices=[victim])
            parallel = session.run_workload(executions=20, seed=4)
            serial = session.run_workload(executions=20, seed=4, workers=1)
            assert parallel == serial
            assert session.pool is pool
            assert pool.delta_refreshes == 1
            assert pool.refreshes == 0
        finally:
            session.close()

    def test_full_mode_never_ships_deltas(self):
        session = small_session(
            worker=self.worker_config(refresh_mode="full")
        )
        try:
            session.run_workload(executions=20, seed=3)
            pool = session.pool
            victim = next(iter(session.graph.vertices()))
            session.retract(vertices=[victim])
            parallel = session.run_workload(executions=20, seed=4)
            serial = session.run_workload(executions=20, seed=4, workers=1)
            assert parallel == serial
            assert session.pool is pool
            assert pool.delta_refreshes == 0
            assert pool.refreshes == 1
        finally:
            session.close()

    def test_journal_overflow_falls_back_to_full_snapshot(self):
        session = small_session(
            worker=self.worker_config(max_delta_events=2)
        )
        try:
            session.run_workload(executions=20, seed=3)
            pool = session.pool
            victims = list(session.graph.vertices())[:3]
            session.retract(vertices=victims)    # >> 2 journalled ops
            parallel = session.run_workload(executions=20, seed=4)
            serial = session.run_workload(executions=20, seed=4, workers=1)
            assert parallel == serial
            assert session.pool is pool
            assert pool.delta_refreshes == 0
            assert pool.refreshes == 1
        finally:
            session.close()
