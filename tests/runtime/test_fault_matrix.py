"""The fault matrix: every scripted failure must end in a correct answer.

One test per fault kind (kill, hang, corrupt, slow, shm_attach), each
asserting the same contract: the parallel call returns results
field-identical to serial execution, silently (no degradation warning),
with the failure visible only in the session's
:class:`~repro.api.ResilienceReport` -- plus the exhausted-budget
paths (serial fallback with a warning, or raise with
``fallback_serial=False``) and a no-leaked-segments audit over every
pool generation the retries spawned.

``REPRO_START_METHOD`` (the CI fault-matrix job's knob) pins the
multiprocessing start method; unset, the platform default applies.
"""

import os
import warnings

import pytest

from repro.api import (
    Cluster,
    ClusterConfig,
    FaultPlan,
    WorkerConfig,
    WorkerFault,
)
from repro.bench.experiments import _motif_testbed
from repro.bench.scaling import default_start_method
from repro.runtime import WorkerCrashError, segment_exists

START = os.environ.get("REPRO_START_METHOD") or default_start_method()

EXECUTIONS = 12


@pytest.fixture()
def testbed():
    graph, workload = _motif_testbed(5, instances=10, noise=30)
    return graph, workload


@pytest.fixture()
def registries(monkeypatch):
    """Spy on every SegmentRegistry any pool creates, so the leak audit
    sweeps all generations -- including pools killed mid-call."""
    from repro.runtime import pool as pool_module
    from repro.runtime.shm import SegmentRegistry

    captured = []

    class SpyRegistry(SegmentRegistry):
        def __init__(self):
            super().__init__()
            captured.append(self)

    monkeypatch.setattr(pool_module, "SegmentRegistry", SpyRegistry)
    return captured


def open_faulty(graph, workload, fault_plan, **worker_overrides):
    options = dict(
        count=2,
        start_method=START,
        fault_plan=fault_plan,
    )
    options.update(worker_overrides)
    session = Cluster.open(
        ClusterConfig(
            partitions=4,
            method="ldg",
            seed=5,
            worker=WorkerConfig(**options),
        ),
        workload=workload,
    )
    session.ingest(graph, workers=1)  # pool spawns at first parallel call
    return session


def assert_no_leaks(registries):
    leaked = [
        name
        for registry in registries
        for name in registry.history
        if segment_exists(name)
    ]
    assert not leaked, f"shared-memory segments leaked: {leaked}"


def run_silently(session):
    """The faulted parallel run must match serial and stay warning-free."""
    serial = session.run_workload(executions=EXECUTIONS, seed=3, workers=1)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        parallel = session.run_workload(executions=EXECUTIONS, seed=3)
    assert parallel == serial
    return session.resilience


class TestFaultMatrix:
    def test_kill_mid_request_retries_to_success(self, testbed, registries):
        graph, workload = testbed
        plan = FaultPlan([WorkerFault(worker_id=0, kind="kill")])
        with open_faulty(graph, workload, plan) as session:
            report = run_silently(session)
            assert report.call_retries >= 1
            assert report.worker_respawns >= 1
            assert report.serial_fallbacks == 0
            assert session.pool.alive
        assert_no_leaks(registries)

    def test_hang_times_out_then_retries(self, testbed, registries):
        graph, workload = testbed
        plan = FaultPlan([WorkerFault(worker_id=1, kind="hang")])
        with open_faulty(
            graph, workload, plan, request_timeout=5.0
        ) as session:
            report = run_silently(session)
            assert report.call_retries >= 1
            assert report.worker_respawns >= 1
        assert_no_leaks(registries)

    def test_corrupt_payload_is_a_crash(self, testbed, registries):
        graph, workload = testbed
        plan = FaultPlan([WorkerFault(worker_id=0, kind="corrupt")])
        with open_faulty(graph, workload, plan) as session:
            report = run_silently(session)
            assert report.call_retries >= 1
        assert_no_leaks(registries)

    def test_slow_worker_is_not_a_failure(self, testbed, registries):
        graph, workload = testbed
        plan = FaultPlan(
            [WorkerFault(worker_id=0, kind="slow", delay=0.3)]
        )
        with open_faulty(
            graph, workload, plan, request_timeout=30.0
        ) as session:
            report = run_silently(session)
            # Latency within the deadline must burn no retry budget.
            assert report.call_retries == 0
            assert report.worker_respawns == 0
        assert_no_leaks(registries)

    def test_shm_attach_failure_respawns(self, testbed, registries):
        graph, workload = testbed
        plan = FaultPlan(
            [WorkerFault(worker_id=1, kind="shm_attach")]
        )
        with open_faulty(graph, workload, plan) as session:
            report = run_silently(session)
            # The boot fault killed the generation-0 spawn; the retry's
            # generation-1 pool (fault disarmed) serves the call.
            assert report.call_retries >= 1
            assert report.worker_respawns >= 1
            assert session.pool.generation >= 1
        assert_no_leaks(registries)

    def test_fault_on_a_later_generation_only(self, testbed, registries):
        """Generation scoping: a fault armed for generation 1 leaves the
        first pool untouched."""
        graph, workload = testbed
        plan = FaultPlan(
            [WorkerFault(worker_id=0, kind="kill", generation=1)]
        )
        with open_faulty(graph, workload, plan) as session:
            report = run_silently(session)
            assert report.call_retries == 0
            assert session.pool.generation == 0
        assert_no_leaks(registries)


class TestExhaustedBudget:
    def exhausting_plan(self):
        """Kill generations 0..3: one more than 1 initial + 2 retries."""
        return FaultPlan(
            [
                WorkerFault(worker_id=0, kind="kill", generation=g)
                for g in range(4)
            ]
        )

    def test_serial_fallback_after_retries(self, testbed, registries):
        graph, workload = testbed
        with open_faulty(
            graph, workload, self.exhausting_plan(), max_retries=2
        ) as session:
            serial = session.run_workload(
                executions=EXECUTIONS, seed=3, workers=1
            )
            with pytest.warns(RuntimeWarning, match="degraded"):
                degraded = session.run_workload(executions=EXECUTIONS, seed=3)
            assert degraded == serial
            report = session.resilience
            assert report.call_retries == 2
            assert report.serial_fallbacks == 1
        assert_no_leaks(registries)

    def test_raises_when_fallback_disabled(self, testbed, registries):
        graph, workload = testbed
        with open_faulty(
            graph,
            workload,
            self.exhausting_plan(),
            max_retries=1,
            fallback_serial=False,
        ) as session:
            with pytest.raises(WorkerCrashError):
                session.run_workload(executions=EXECUTIONS, seed=3)
            report = session.resilience
            assert report.call_retries == 1
            assert report.serial_fallbacks == 0
            # The session itself survives: serial execution still works.
            session.run_workload(executions=EXECUTIONS, seed=3, workers=1)
        assert_no_leaks(registries)

    def test_zero_retries_degrades_immediately(self, testbed, registries):
        graph, workload = testbed
        plan = FaultPlan([WorkerFault(worker_id=0, kind="kill")])
        with open_faulty(
            graph, workload, plan, max_retries=0
        ) as session:
            serial = session.run_workload(
                executions=EXECUTIONS, seed=3, workers=1
            )
            with pytest.warns(RuntimeWarning, match="degraded"):
                degraded = session.run_workload(executions=EXECUTIONS, seed=3)
            assert degraded == serial
            assert session.resilience.call_retries == 0
            assert session.resilience.serial_fallbacks == 1
        assert_no_leaks(registries)


class TestPlanRoundTrip:
    def test_fault_plan_round_trips_through_config(self):
        plan = FaultPlan(
            [
                WorkerFault(worker_id=1, kind="hang", at_message=2,
                            delay=1.5, generation=1),
                WorkerFault(worker_id=0, kind="kill"),
            ]
        )
        config = ClusterConfig(
            partitions=4, worker=WorkerConfig(count=2, fault_plan=plan)
        )
        rebuilt = ClusterConfig.from_dict(config.as_dict())
        assert rebuilt.worker.fault_plan == plan

    def test_for_worker_filters_by_id_and_generation(self):
        plan = FaultPlan(
            [
                WorkerFault(worker_id=0, kind="kill"),
                WorkerFault(worker_id=0, kind="hang", generation=1),
                WorkerFault(worker_id=1, kind="slow", delay=0.1),
            ]
        )
        assert [f.kind for f in plan.for_worker(0, 0)] == ["kill"]
        assert [f.kind for f in plan.for_worker(0, 1)] == ["hang"]
        assert [f.kind for f in plan.for_worker(1, 0)] == ["slow"]
        assert plan.for_worker(2, 0) == ()

    def test_bad_fault_values_rejected(self):
        with pytest.raises(ValueError):
            WorkerFault(worker_id=0, kind="meteor")
        with pytest.raises(ValueError):
            WorkerFault(worker_id=-1, kind="kill")
        with pytest.raises(ValueError):
            WorkerFault(worker_id=0, kind="kill", at_message=0)
