"""Worker death must degrade, never hang: the kill-the-worker tests."""

import random

import pytest

from repro.api import Cluster, ClusterConfig, WorkerConfig
from repro.bench.experiments import _motif_testbed
from repro.bench.scaling import default_start_method
from repro.cluster.executor import run_workload
from repro.runtime import (
    ShardSnapshot,
    ShardedExecutor,
    WorkerCrashError,
    WorkerPool,
    run_sharded_workload,
)

START = default_start_method()


@pytest.fixture()
def placed():
    graph, workload = _motif_testbed(5, instances=10, noise=30)
    session = Cluster.open(
        ClusterConfig(partitions=4, method="ldg", seed=5), workload=workload
    )
    session.ingest(graph)
    return session, workload


def kill_one(pool):
    victim = pool.handles[0].process
    victim.kill()
    victim.join(timeout=5.0)
    assert not victim.is_alive()


class TestCrashFallback:
    def test_fallback_serial_with_warning(self, placed):
        """A killed worker turns the fan-out into a warned in-process
        run with identical results -- not a hang on a dead mailbox."""
        session, workload = placed
        reference = run_workload(
            session.store, workload, executions=15, rng=random.Random(2)
        )
        snapshot = ShardSnapshot.of(session.store)
        with WorkerPool(
            snapshot, workers=2, start_method=START, timeout=30.0
        ) as pool:
            kill_one(pool)
            with pytest.warns(RuntimeWarning, match="degraded"):
                stats, fanout = run_sharded_workload(
                    session.store,
                    workload,
                    pool,
                    executions=15,
                    rng=random.Random(2),
                    fallback=True,
                )
        assert fanout.fallback_used
        assert stats.matches == reference.matches
        assert stats.ledger.local == reference.ledger.local
        assert stats.ledger.remote == reference.ledger.remote

    def test_fallback_disabled_raises(self, placed):
        session, workload = placed
        snapshot = ShardSnapshot.of(session.store)
        with WorkerPool(
            snapshot, workers=2, start_method=START, timeout=30.0
        ) as pool:
            kill_one(pool)
            executor = ShardedExecutor(
                session.store, pool, fallback=False
            )
            with pytest.raises(WorkerCrashError):
                executor.execute(next(iter(workload)))

    def test_timeout_poisons_pool_closed_then_retried(self, placed):
        """A round trip that times out while the workers are still alive
        leaves undrained responses in the pipes.  The pool must close
        itself (never serve stale responses) and the call must retry on
        a respawned pool -- completing parallel, warning-free, with the
        poisoning visible only in the resilience counters."""
        import warnings

        session, workload = placed
        graph = session.graph
        config = ClusterConfig(
            partitions=4,
            method="ldg",
            seed=5,
            worker=WorkerConfig(count=2, start_method=START),
        )
        with Cluster.open(config, workload=workload) as parallel_session:
            parallel_session.ingest(graph)
            serial = parallel_session.run_workload(
                executions=15, seed=3, workers=1
            )
            poisoned = parallel_session.pool

            # Deterministically simulate a worker that is alive but
            # silent past the deadline (a real tiny timeout races with
            # fast workers): its response stays undrained in the pipe.
            def silent_recv(timeout):
                from repro.runtime.mailbox import MailboxTimeoutError

                raise MailboxTimeoutError("simulated silent worker")

            poisoned.handles[0].mailbox.recv = silent_recv
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # retry must stay silent
                recovered = parallel_session.run_workload(
                    executions=15, seed=3
                )
            assert recovered == serial
            assert not poisoned.alive  # closed, not left poisoned
            assert parallel_session.pool is not poisoned
            assert parallel_session.pool.alive
            resilience = parallel_session.resilience
            assert resilience.call_retries >= 1
            assert resilience.worker_respawns >= 1
            assert resilience.serial_fallbacks == 0
            # Store mutation forces a re-prime on the next parallel call;
            # the respawned pool keeps serving it.
            parallel_session.replicate(executions=5, budget=2, seed=1)
            serial_after = parallel_session.run_workload(
                executions=15, seed=3, workers=1
            )
            recovered_after = parallel_session.run_workload(
                executions=15, seed=3
            )
            assert recovered_after == serial_after

    def test_session_self_heals_after_worker_death(self, placed):
        """Through the façade: a worker killed between calls is noticed
        at dispatch time -- the session respawns a healthy pool and the
        next parallel call completes with serial-identical results (no
        hang, no stale mailbox)."""
        session, workload = placed
        graph = session.graph
        config = ClusterConfig(
            partitions=4,
            method="ldg",
            seed=5,
            worker=WorkerConfig(count=2, start_method=START),
        )
        with Cluster.open(config, workload=workload) as parallel_session:
            parallel_session.ingest(graph)
            serial = parallel_session.run_workload(
                executions=15, seed=3, workers=1
            )
            healthy = parallel_session.run_workload(executions=15, seed=3)
            assert healthy == serial
            dead_pool = parallel_session.pool
            kill_one(dead_pool)
            recovered = parallel_session.run_workload(executions=15, seed=3)
            assert recovered == serial
            assert parallel_session.pool is not dead_pool
            assert parallel_session.pool.alive
