"""The per-worker deadline regression: one slow worker must not starve
the rest of their timeout budget, and hangs must be attributed to the
worker whose response actually never arrived.

Before the multiplexed gather the pool drained mailboxes worker by
worker, so whichever order the drain visited them, the *total* wait
could reach N x timeout -- and worse, a worker polled late got blamed
for a hang even when its answer had been sitting in the pipe for the
whole slow peer's nap.  The gather now polls every pending pipe under
one shared ``time.monotonic()`` deadline.
"""

import random
import time

import pytest

from repro.api import (
    Cluster,
    ClusterConfig,
    FaultPlan,
    WorkerConfig,
    WorkerFault,
)
from repro.bench.experiments import _motif_testbed
from repro.bench.scaling import default_start_method
from repro.runtime import ShardSnapshot, WorkerCrashError, WorkerPool

START = default_start_method()

#: One slow-but-alive worker: answers normally after this nap.
SLOW_SECONDS = 1.2


@pytest.fixture()
def placed():
    graph, workload = _motif_testbed(5, instances=8, noise=20)
    session = Cluster.open(
        ClusterConfig(partitions=4, method="ldg", seed=5), workload=workload
    )
    session.ingest(graph)
    return session, workload


class TestSlowWorkerNotStarved:
    def test_slow_worker_does_not_fail_the_round(self, placed):
        """A slow-fault worker under the timeout completes the round:
        nobody is declared hung, nobody is respawned, and the report
        equals the serial run."""
        session, workload = placed
        graph = session.graph
        config = ClusterConfig(
            partitions=4,
            method="ldg",
            seed=5,
            worker=WorkerConfig(
                count=2,
                start_method=START,
                request_timeout=30.0,
                fault_plan=FaultPlan(
                    (WorkerFault(0, "slow", delay=SLOW_SECONDS),)
                ),
            ),
        )
        with Cluster.open(config, workload=workload) as parallel:
            parallel.ingest(graph)
            serial = parallel.run_workload(executions=10, seed=3, workers=1)
            # The fault fires on the pool's first post-boot message
            # (the execute broadcast of this parallel run).
            report = parallel.run_workload(executions=10, seed=3)
            assert report == serial
            resilience = parallel.resilience
            assert resilience.worker_respawns == 0
            assert resilience.call_retries == 0
            assert resilience.serial_fallbacks == 0
            assert parallel.pool is not None and parallel.pool.alive

    def test_fast_workers_keep_their_own_budget(self, placed):
        """Direct pool round trip: with timeout > slow delay the gather
        succeeds, and the whole round costs ~max(delay), never
        sum-over-workers of full timeouts."""
        session, workload = placed
        snapshot = ShardSnapshot.of(session.store)
        plan = FaultPlan((WorkerFault(0, "slow", delay=SLOW_SECONDS),))
        queries = [workload.sample(random.Random(1)) for _ in range(4)]
        with WorkerPool(
            snapshot,
            workers=3,
            start_method=START,
            timeout=SLOW_SECONDS * 10,
            fault_plan=plan,
        ) as pool:
            began = time.monotonic()
            responses = pool.execute(queries)
            elapsed = time.monotonic() - began
        assert len(responses) == 3
        assert [r.worker_id for r in responses] == [0, 1, 2]
        # Shared deadline: the slow worker's nap bounds the round; the
        # old per-worker sequential drain would have been legal up to
        # workers * timeout.  Generous factor for loaded CI boxes.
        assert elapsed < SLOW_SECONDS * 6


class TestHangAttribution:
    def test_hang_blames_only_the_hung_worker(self, placed):
        """With worker 1 hanging past the deadline, the crash names
        worker 1 (alive but silent) and no one else -- the fast workers'
        answers were drained, not mistaken for hangs."""
        session, workload = placed
        snapshot = ShardSnapshot.of(session.store)
        plan = FaultPlan((WorkerFault(1, "hang"),))
        queries = [workload.sample(random.Random(1)) for _ in range(2)]
        pool = WorkerPool(
            snapshot,
            workers=3,
            start_method=START,
            timeout=1.5,
            fault_plan=plan,
        )
        try:
            with pytest.raises(WorkerCrashError) as excinfo:
                pool.execute(queries)
        finally:
            pool.close()
        message = str(excinfo.value)
        assert "worker 1" in message
        assert "worker 0" not in message
        assert "worker 2" not in message
        assert "alive but silent" in message
