"""Shared-memory lifecycle: publish, attach, and above all never leak.

Every test here audits the same invariant from a different teardown
path: a segment published by a pool's :class:`SegmentRegistry` must be
unlinked by the time the pool (or the session wrapping it) is gone --
clean close, repeated refreshes, worker crash degradation, respawn, all
of it.  ``SegmentRegistry.history`` records every name ever published
precisely so these audits can sweep the full lifetime, not just the
final state.
"""

import json
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import Cluster, ClusterConfig, WorkerConfig
from repro.bench.experiments import _motif_testbed
from repro.bench.scaling import default_start_method
from repro.graph.labelled import LabelledGraph
from repro.runtime import (
    SegmentRegistry,
    ShardSnapshot,
    SharedSnapshotRef,
    SnapshotSchemaError,
    WorkerCrashError,
    WorkerPool,
    attach_store,
    segment_exists,
)
from repro.workload import PatternQuery, Workload

START = default_start_method()


def small_session(partitions=3, seed=0, worker=None):
    workload = Workload([PatternQuery("ab", LabelledGraph.path("ab"))])
    session = Cluster.open(
        ClusterConfig(
            partitions=partitions,
            method="ldg",
            seed=seed,
            worker=worker or WorkerConfig(),
        ),
        workload=workload,
    )
    rng = random.Random(seed)
    graph = LabelledGraph()
    for v in range(30):
        graph.add_vertex(v, rng.choice("abc"))
    for v in range(1, 30):
        graph.add_edge(v, rng.randrange(v))
    session.ingest(graph)
    return session


def assert_all_reaped(names):
    leaked = [name for name in names if segment_exists(name)]
    assert not leaked, f"shared-memory segments leaked: {leaked}"


class TestRegistry:
    def test_publish_attach_round_trip(self):
        store = small_session().store
        registry = SegmentRegistry()
        try:
            ref = registry.publish(store.export_columns(), version=3)
            assert segment_exists(ref.name)
            assert ref.version == 3
            replica = attach_store(ref)
            assert replica.graph == store.graph
        finally:
            registry.close()
        assert not segment_exists(ref.name)
        assert registry.active == ()

    def test_unlink_is_idempotent(self):
        registry = SegmentRegistry()
        ref = registry.publish(b"payload")
        registry.unlink(ref.name)
        registry.unlink(ref.name)
        registry.unlink("never-published")
        assert not segment_exists(ref.name)

    def test_close_reaps_everything_and_history_remembers(self):
        registry = SegmentRegistry()
        refs = [registry.publish(bytes([i]) * 64) for i in range(3)]
        assert len(registry) == 3
        registry.close()
        registry.close()
        assert len(registry) == 0
        assert registry.history == [ref.name for ref in refs]
        assert_all_reaped(registry.history)

    def test_empty_payload_publishes(self):
        registry = SegmentRegistry()
        try:
            ref = registry.publish(b"")
            assert ref.num_bytes == 0
            assert segment_exists(ref.name)
        finally:
            registry.close()

    def test_attach_refuses_foreign_schema(self):
        """A ref minted by some other protocol must fail up front with
        both schema names -- not half-attach and explode later."""
        alien = SharedSnapshotRef(
            name="whatever", num_bytes=8, schema="someone/else/v9"
        )
        with pytest.raises(SnapshotSchemaError) as caught:
            attach_store(alien)
        assert "someone/else/v9" in str(caught.value)
        assert "loom-repro/shard-snapshot" in str(caught.value)


class TestPoolLifecycle:
    def pool_for(self, store, **kwargs):
        snapshot = ShardSnapshot.of(store, version=store.mutation_ticks)
        options = dict(workers=2, start_method=START, timeout=60.0)
        options.update(kwargs)
        return WorkerPool(snapshot, **options)

    def test_boot_segment_unlinked_once_workers_confirm(self):
        store = small_session().store
        pool = self.pool_for(store)
        try:
            assert pool.uses_shared_memory
            assert len(pool.segments.history) == 1
            # Unlinked already -- the workers confirmed their decode
            # during construction, so the boot segment is garbage.
            assert_all_reaped(pool.segments.history)
        finally:
            pool.close()
        assert_all_reaped(pool.segments.history)

    def test_every_refresh_segment_is_reaped(self):
        session = small_session()
        store = session.store
        pool = self.pool_for(store)
        try:
            for _ in range(3):
                session.retract(
                    vertices=[next(iter(store.graph.vertices()))]
                )
                pool.refresh(
                    ShardSnapshot.of(store, version=store.mutation_ticks)
                )
            assert pool.refreshes == 3
            assert len(pool.segments.history) == 4  # boot + 3 refreshes
            assert_all_reaped(pool.segments.history)
        finally:
            pool.close()
        assert_all_reaped(pool.segments.history)

    def test_crash_degradation_reaps_segments(self):
        """Killing a worker mid-life and letting the pool discover it
        (failed round trip closes the pool) must still reap every
        segment ever published."""
        graph, workload = _motif_testbed(5, instances=10, noise=30)
        session = Cluster.open(
            ClusterConfig(partitions=4, method="ldg", seed=5),
            workload=workload,
        )
        session.ingest(graph)
        pool = self.pool_for(session.store)
        victim = pool.handles[0].process
        victim.kill()
        victim.join(timeout=5.0)
        assert not victim.is_alive()
        with pytest.raises(WorkerCrashError):
            pool.refresh(
                ShardSnapshot.of(
                    session.store,
                    version=session.store.mutation_ticks + 1,
                )
            )
        assert not pool.alive
        assert_all_reaped(pool.segments.history)

    def test_failed_spawn_reaps_boot_segment(self, monkeypatch):
        """A worker that dies during the Hello handshake aborts the
        spawn -- and the half-built pool must reap its boot segment on
        the way out.  The failed constructor never hands back a pool, so
        a spy registry captures the instance for the audit."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        from repro.runtime import pool as pool_module
        from repro.runtime import worker as worker_module

        registries = []

        class SpyRegistry(SegmentRegistry):
            def __init__(self):
                super().__init__()
                registries.append(self)

        def broken_worker_main(worker_id, connection, *args):
            connection.close()

        monkeypatch.setattr(pool_module, "SegmentRegistry", SpyRegistry)
        # fork keeps the patched module in the child; spawn would
        # re-import the real worker_main.
        monkeypatch.setattr(worker_module, "worker_main", broken_worker_main)
        store = small_session().store
        snapshot = ShardSnapshot.of(store, version=store.mutation_ticks)
        with pytest.raises(WorkerCrashError):
            WorkerPool(snapshot, workers=2, start_method="fork", timeout=10.0)
        (registry,) = registries
        assert registry.history  # the boot segment was published...
        assert registry.active == ()  # ...and the failed spawn reaped it
        assert_all_reaped(registry.history)


class TestSessionLifecycle:
    def worker_config(self, **overrides):
        options = dict(count=2, start_method=START, fallback_serial=False)
        options.update(overrides)
        return WorkerConfig(**options)

    def collect_history(self, session):
        return list(session.pool.segments.history) if session.pool else []

    def test_open_query_close_leaves_no_segments(self):
        session = small_session(worker=self.worker_config())
        session.run_workload(executions=20, seed=3)
        names = self.collect_history(session)
        assert names  # the boot snapshot travelled via shared memory
        session.close()
        assert_all_reaped(names)

    def test_churny_session_leaves_no_segments(self):
        """Retractions force refreshes (delta or full); whatever mix
        ran, every published segment must be gone after close."""
        session = small_session(worker=self.worker_config())
        names = set()
        session.run_workload(executions=10, seed=3)
        names.update(self.collect_history(session))
        for _ in range(3):
            victim = next(iter(session.graph.vertices()))
            session.retract(vertices=[victim])
            session.run_workload(executions=10, seed=4)
            names.update(self.collect_history(session))
        session.close()
        assert_all_reaped(names)

    def test_kill_worker_crash_degradation_leaves_no_segments(self):
        """The crash-degradation path: a worker dies, the session
        degrades the call and respawns later -- across the dead pool and
        its replacement, no segment survives the session."""
        graph, workload = _motif_testbed(5, instances=10, noise=30)
        session = Cluster.open(
            ClusterConfig(
                partitions=4,
                method="ldg",
                seed=5,
                worker=WorkerConfig(count=2, start_method=START),
            ),
            workload=workload,
        )
        names = set()
        try:
            session.ingest(graph)
            session.run_workload(executions=10, seed=3)
            dead_pool = session.pool
            names.update(dead_pool.segments.history)
            victim = dead_pool.handles[0].process
            victim.kill()
            victim.join(timeout=5.0)
            session.run_workload(executions=10, seed=3)  # respawns
            assert session.pool is not dead_pool
            names.update(self.collect_history(session))
        finally:
            session.close()
        assert names
        assert_all_reaped(names)

    def test_sigint_mid_call_closes_cleanly(self):
        """SIGINT landing mid-``run_workload`` must leave a closeable
        session: the command lock unwinds with the KeyboardInterrupt,
        ``close()`` (exempt from the lock precisely for this path) reaps
        the pool, and no shared-memory segment survives the process."""
        child = """
import json
import random

from repro.api import Cluster, ClusterConfig, WorkerConfig
from repro.bench.scaling import default_start_method
from repro.graph.labelled import LabelledGraph
from repro.workload import PatternQuery, Workload

workload = Workload([PatternQuery("ab", LabelledGraph.path("ab"))])
session = Cluster.open(
    ClusterConfig(
        partitions=3,
        method="ldg",
        seed=0,
        worker=WorkerConfig(
            count=2,
            start_method=default_start_method(),
            fallback_serial=False,
        ),
    ),
    workload=workload,
)
rng = random.Random(0)
graph = LabelledGraph()
for v in range(30):
    graph.add_vertex(v, rng.choice("abc"))
for v in range(1, 30):
    graph.add_edge(v, rng.randrange(v))
session.ingest(graph)
session.run_workload(executions=10, seed=3)
print("READY", flush=True)
try:
    while True:
        session.run_workload(executions=200, seed=4)
except KeyboardInterrupt:
    names = list(session.pool.segments.history) if session.pool else []
    session.close()
    print("SEGMENTS " + json.dumps(names), flush=True)
    print("CLOSED", flush=True)
"""
        src = Path(__file__).resolve().parents[2] / "src"
        proc = subprocess.Popen(
            [sys.executable, "-c", child],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        try:
            assert proc.stdout is not None
            for line in proc.stdout:
                if line.strip() == "READY":
                    break
            time.sleep(0.5)  # land inside a run_workload call
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0, err
        assert "CLOSED" in out
        (segments_line,) = [
            line for line in out.splitlines() if line.startswith("SEGMENTS ")
        ]
        names = json.loads(segments_line[len("SEGMENTS "):])
        assert names  # the pool really was live when the signal hit
        assert_all_reaped(names)

    def test_shared_memory_off_publishes_nothing(self):
        session = small_session(
            worker=self.worker_config(shared_memory=False)
        )
        try:
            session.run_workload(executions=10, seed=3)
            assert session.pool is not None
            assert not session.pool.uses_shared_memory
            assert session.pool.segments.history == []
        finally:
            session.close()
