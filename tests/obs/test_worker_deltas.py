"""Worker metric deltas merge exactly: parallel == serial, faults excluded.

The acceptance bar for the observability layer's distribution story:
a 2-worker run must report *semantic* counters identical to the same
run with ``workers=1`` (time-valued series are exempt -- wall time is
not semantic), worker-side deltas must conserve exactly against the
coordinator's executor totals, and a killed worker's partial deltas
must never leak into the merged registry (no double counting across
respawn/retry).
"""

import pytest

from repro.api import Cluster, ClusterConfig, FaultPlan, WorkerConfig, WorkerFault
from repro.bench.experiments import _motif_testbed
from repro.bench.scaling import default_start_method

START = default_start_method()

#: Counters whose values must be byte-identical serial vs parallel.
SEMANTIC = (
    ("executor.queries", {}),
    ("executor.answers", {}),
    ("executor.traversals", {"scope": "local"}),
    ("executor.traversals", {"scope": "remote"}),
)


def run_session(workers, fault_plan=None):
    graph, workload = _motif_testbed(3, instances=12, noise=40)
    config = ClusterConfig(
        partitions=4,
        method="ldg",
        seed=3,
        worker=WorkerConfig(
            count=workers, start_method=START, fault_plan=fault_plan,
            retry_backoff=0.0,
        ),
    )
    with Cluster.open(config, workload=workload) as session:
        session.ingest(graph)
        session.run_workload(executions=30, workers=workers)
        return session.metrics()


def value(snapshot, name, labels):
    for row in snapshot["metrics"][name]["series"]:
        if row["labels"] == labels:
            return row["value"]
    return 0.0


def worker_sum(snapshot, name, labels):
    return value(snapshot, name, labels)


@pytest.fixture(scope="module")
def serial():
    return run_session(1)


@pytest.fixture(scope="module")
def parallel():
    return run_session(2)


class TestParallelEqualsSerial:
    def test_semantic_counters_identical(self, serial, parallel):
        for name, labels in SEMANTIC:
            assert value(parallel, name, labels) == value(
                serial, name, labels
            ), name

    def test_counters_are_nonzero(self, serial):
        # A vacuous identity (0 == 0) would pass the test above while
        # the instrumentation is silently dead; pin real work happened.
        assert value(serial, "executor.queries", {}) == 30.0
        assert value(serial, "executor.answers", {}) > 0
        assert value(serial, "executor.traversals", {"scope": "local"}) > 0


class TestWorkerConservation:
    def test_worker_deltas_conserve_exactly(self, parallel):
        # Answer-producing work is owned by exactly one worker, so the
        # mailbox-reported deltas must sum to the coordinator's totals
        # exactly -- not approximately.
        for scope in ("local", "remote"):
            assert worker_sum(
                parallel, "worker.traversals", {"scope": scope}
            ) == value(parallel, "executor.traversals", {"scope": scope})
        # Workers report raw partial answers; the coordinator's merge
        # dedups by (vertex set, edge ids), so worker-side counts bound
        # the merged total from above.
        assert worker_sum(parallel, "worker.answers", {}) >= value(
            parallel, "executor.answers", {}
        )
        assert value(parallel, "worker.requests", {}) > 0

    def test_serial_runs_report_no_worker_series(self, serial):
        assert value(serial, "worker.requests", {}) == 0.0
        assert value(serial, "worker.traversals", {"scope": "local"}) == 0.0


class TestFaultIsolation:
    def test_killed_worker_deltas_never_double_count(self, serial):
        # Kill worker 0 on its first workload request; the pool
        # respawns and the retry succeeds.  Deltas from the dead
        # generation must not leak: conservation still holds and the
        # semantic counters still equal serial's.
        plan = FaultPlan([WorkerFault(worker_id=0, kind="kill")])
        snapshot = run_session(2, fault_plan=plan)
        for name, labels in SEMANTIC:
            assert value(snapshot, name, labels) == value(
                serial, name, labels
            ), name
        for scope in ("local", "remote"):
            assert worker_sum(
                snapshot, "worker.traversals", {"scope": scope}
            ) == value(snapshot, "executor.traversals", {"scope": scope})
        assert value(snapshot, "resilience.worker_respawns", {}) >= 1.0
        assert value(snapshot, "resilience.call_retries", {}) >= 1.0
