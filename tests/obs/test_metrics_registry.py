"""Registry semantics: buckets, merges, resets, expositions, tracing.

Everything here is deterministic by construction -- no clocks, no
processes.  The golden exposition tests pin exact bytes: a formatting
change that alters them is a wire-format change and should look like
one in review.
"""

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    SpanTracer,
    build_registry,
    metric_names,
    render_json,
    render_prom,
)
from repro.obs.tracing import SPAN_METRIC


def fresh():
    registry = MetricsRegistry()
    registry.counter("t.hits", "hits", labels=("kind",))
    registry.counter("t.total", "total")
    registry.gauge("t.depth", "depth")
    registry.histogram("t.lat", "latency", buckets=(0.1, 1.0, 10.0))
    return registry


def series(snapshot, name):
    return snapshot["metrics"][name]["series"]


class TestDeclaration:
    def test_names_must_be_dotted_snake_case(self):
        registry = MetricsRegistry()
        for bad in ("flat", "Caps.name", "a.", "a..b", "a.B", "9a.b"):
            with pytest.raises(MetricError):
                registry.counter(bad, "help")

    def test_double_declaration_raises(self):
        registry = fresh()
        with pytest.raises(MetricError):
            registry.counter("t.hits", "again")

    def test_kind_mismatch_on_emission(self):
        registry = fresh()
        with pytest.raises(MetricError):
            registry.inc("t.depth")
        with pytest.raises(MetricError):
            registry.observe("t.total", 1.0)
        with pytest.raises(MetricError):
            registry.inc("t.unknown")

    def test_label_schema_is_checked(self):
        registry = fresh()
        with pytest.raises(MetricError):
            registry.inc("t.hits")  # missing the declared label
        with pytest.raises(MetricError):
            registry.inc("t.total", kind="x")  # undeclared label

    def test_counters_cannot_decrease(self):
        registry = fresh()
        with pytest.raises(MetricError):
            registry.inc("t.total", -1.0)

    def test_histogram_bounds_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError):
            registry.histogram("t.bad", "x", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("t.bad", "x", buckets=())


class TestBuckets:
    def test_boundary_values_land_in_their_bound_bucket(self):
        # bisect_left: a value exactly on a bound belongs to that
        # bound's bucket (le semantics), one ulp above spills over.
        registry = fresh()
        registry.observe("t.lat", 0.1)
        registry.observe("t.lat", 0.100001)
        registry.observe("t.lat", 10.0)
        registry.observe("t.lat", 11.0)  # +Inf overflow
        [row] = series(registry.snapshot(), "t.lat")
        assert row["counts"] == [1, 1, 1, 1]
        assert row["count"] == 4
        assert row["sum"] == pytest.approx(21.200001)

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))


class TestMergeSemantics:
    def test_counters_add_and_gauges_max(self):
        a, b = fresh(), fresh()
        a.inc("t.total", 3)
        b.inc("t.total", 4)
        a.set("t.depth", 7)
        b.set("t.depth", 5)
        a.merge_snapshot(b.snapshot())
        assert a.value("t.total") == 7.0
        assert a.value("t.depth") == 7.0  # max, not last-write

    def test_labelled_series_merge_independently(self):
        a, b = fresh(), fresh()
        a.inc("t.hits", 2, kind="local")
        b.inc("t.hits", 3, kind="local")
        b.inc("t.hits", 5, kind="remote")
        a.merge_snapshot(b.snapshot())
        assert a.value("t.hits", kind="local") == 5.0
        assert a.value("t.hits", kind="remote") == 5.0

    def test_merge_is_order_independent(self):
        parts = []
        for hits in (1, 2, 3):
            registry = fresh()
            registry.inc("t.hits", hits, kind="local")
            # Binary-exact values: float addition stays associative.
            registry.observe("t.lat", float(hits) / 4)
            parts.append(registry.snapshot())
        forward, backward = fresh(), fresh()
        for snap in parts:
            forward.merge_snapshot(snap)
        for snap in reversed(parts):
            backward.merge_snapshot(snap)
        assert forward.snapshot() == backward.snapshot()

    def test_histogram_buckets_add(self):
        a, b = fresh(), fresh()
        a.observe("t.lat", 0.05)
        b.observe("t.lat", 0.05)
        b.observe("t.lat", 5.0)
        a.merge_snapshot(b.snapshot())
        [row] = series(a.snapshot(), "t.lat")
        assert row["counts"] == [2, 0, 1, 0]
        assert row["count"] == 3

    def test_merge_adopts_unknown_metrics(self):
        donor = MetricsRegistry()
        donor.counter("x.new", "adopted")
        donor.inc("x.new", 2)
        target = fresh()
        target.merge_snapshot(donor.snapshot())
        assert target.value("x.new") == 2.0

    def test_merge_rejects_foreign_schema_and_kind_drift(self):
        registry = fresh()
        with pytest.raises(MetricError):
            registry.merge_snapshot({"schema": "nope", "metrics": {}})
        drifted = MetricsRegistry()
        drifted.gauge("t.total", "total")  # counter here, gauge there
        with pytest.raises(MetricError):
            registry.merge_snapshot(drifted.snapshot())

    def test_merge_delta_adds_and_rejects_undeclared(self):
        registry = fresh()
        registry.merge_delta(
            [
                ("t.hits", {"kind": "local"}, 2.0),
                ("t.hits", {"kind": "local"}, 3.0),
                ("t.total", {}, 1.0),
            ]
        )
        assert registry.value("t.hits", kind="local") == 5.0
        assert registry.value("t.total") == 1.0
        with pytest.raises(MetricError):
            registry.merge_delta([("t.nope", {}, 1.0)])

    def test_reset_zeroes_values_but_keeps_declarations(self):
        registry = fresh()
        registry.inc("t.total", 9)
        registry.observe("t.lat", 0.2)
        registry.reset()
        assert registry.value("t.total") == 0.0
        snap = registry.snapshot()
        assert series(snap, "t.lat") == []
        assert "t.lat" in snap["metrics"]  # still declared
        registry.inc("t.total")  # and still writable


class TestDisabled:
    def test_disabled_registry_absorbs_writes(self):
        registry = fresh()
        registry.enabled = False
        registry.inc("t.total", 5)
        registry.set("t.depth", 5)
        registry.observe("t.lat", 0.5)
        registry.set_value("t.total", 5)
        assert registry.value("t.total") == 0.0
        assert all(
            entry["series"] == []
            for entry in registry.snapshot()["metrics"].values()
        )


class TestExpositions:
    def golden(self):
        registry = fresh()
        registry.inc("t.hits", 2, kind="local")
        registry.inc("t.hits", 1, kind="remote")
        registry.set("t.depth", 3)
        registry.observe("t.lat", 0.05)
        registry.observe("t.lat", 2.0)
        return registry.snapshot()

    def test_render_json_is_canonical(self):
        text = render_json(self.golden())
        assert text == render_json(self.golden())  # byte-stable
        assert json.loads(text)["schema"] == "loom-repro/metrics/v1"
        assert ": " not in text and ", " not in text  # no whitespace

    def test_render_prom_golden(self):
        assert render_prom(self.golden()) == (
            "# HELP t_depth depth\n"
            "# TYPE t_depth gauge\n"
            "t_depth 3\n"
            "# HELP t_hits hits\n"
            "# TYPE t_hits counter\n"
            't_hits{kind="local"} 2\n'
            't_hits{kind="remote"} 1\n'
            "# HELP t_lat latency\n"
            "# TYPE t_lat histogram\n"
            't_lat_bucket{le="0.1"} 1\n'
            't_lat_bucket{le="1"} 1\n'
            't_lat_bucket{le="10"} 2\n'
            't_lat_bucket{le="+Inf"} 2\n'
            "t_lat_sum 2.05\n"
            "t_lat_count 2\n"
            "# HELP t_total total\n"
            "# TYPE t_total counter\n"
        )


class TestCatalogue:
    def test_build_registry_declares_the_published_names(self):
        registry = build_registry()
        assert registry.names() == metric_names()
        assert "executor.traversals" in registry.names()

    def test_catalogue_snapshot_is_self_describing(self):
        snap = build_registry().snapshot()
        assert set(snap["metrics"]) == set(metric_names())
        assert all(
            entry["help"] for entry in snap["metrics"].values()
        )


class TestTracer:
    def test_fake_clock_pins_exact_durations(self):
        ticks = iter(range(100))
        registry = build_registry()
        tracer = SpanTracer(clock=lambda: next(ticks), registry=registry)
        with tracer.span("outer", command="ingest"):
            pass
        [span] = tracer.spans()
        assert span.name == "outer"
        assert span.seconds == 1  # one tick elapsed
        assert dict(span.labels) == {"command": "ingest"}
        [row] = series(registry.snapshot(), SPAN_METRIC)
        assert row["labels"] == {"span": "outer"}
        assert row["count"] == 1

    def test_ring_is_bounded(self):
        tracer = SpanTracer(clock=lambda: 0.0, limit=2)
        for name in ("a.one", "b.two", "c.three"):
            with tracer.span(name):
                pass
        assert [s.name for s in tracer.spans()] == ["b.two", "c.three"]

    def test_exceptions_still_record_the_span(self):
        tracer = SpanTracer(clock=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans()[-1].name == "boom"
