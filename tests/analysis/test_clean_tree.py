"""The real ``src/repro`` tree must analyze clean.

This is the same gate CI runs: a finding anywhere in the package is a
regression against the invariants the checkers encode (or a new rule
that needs a justified ``# repro: noqa`` at its one sanctioned site).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import CHECKS, analyze_paths, default_root, render_text

SRC = Path(__file__).parents[2] / "src" / "repro"


def test_repo_tree_is_clean():
    findings = analyze_paths([SRC])
    assert findings == [], "\n" + render_text(findings)


def test_default_root_is_the_installed_package():
    root = default_root()
    assert root.name == "repro"
    assert (root / "analysis").is_dir()


def test_all_six_checkers_registered():
    assert set(CHECKS) == {"CFG", "DET", "OBS", "PROT", "RES", "WAL"}
    for prefix, (description, checker) in CHECKS.items():
        assert description and callable(checker), prefix


def test_every_checker_runs_on_the_real_tree_individually():
    # Selecting one checker at a time must also be clean -- guards
    # against a checker that only passes because another one's module
    # ordering masks it.
    for prefix in CHECKS:
        assert analyze_paths([SRC], select=prefix) == [], prefix
