"""``loom-repro analyze``: exit codes and report formats."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

SRC = Path(__file__).parents[2] / "src" / "repro"
FIXTURES = Path(__file__).parent / "fixtures" / "violations"


def test_clean_tree_exits_zero(capsys):
    assert main(["analyze", str(SRC)]) == 0
    assert "analysis clean" in capsys.readouterr().out


def test_violations_exit_one_with_text_report(capsys):
    assert main(["analyze", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "WAL001" in out and "finding(s)" in out


def test_json_report_is_structured(capsys):
    assert main(["analyze", "--format", "json", str(FIXTURES)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    assert payload["counts"]["DET003"] == 2
    triples = {
        (f["path"], f["line"], f["code"]) for f in payload["findings"]
    }
    assert ("runtime/worker.py", 3, "PROT003") in triples
    assert set(payload["checks"]) == {"CFG", "DET", "OBS", "PROT", "RES", "WAL"}


def test_json_clean_tree(capsys):
    assert main(["analyze", "--format", "json", str(SRC)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True and payload["findings"] == []


def test_select_filters_checkers(capsys):
    assert main(["analyze", "--select", "PROT", str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "PROT001" in out and "WAL001" not in out


def test_unknown_check_is_usage_error(capsys):
    assert main(["analyze", "--select", "XYZ", str(SRC)]) == 2
    assert "unknown check" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys):
    assert main(["analyze", "/no/such/tree"]) == 2
    assert "no such path" in capsys.readouterr().err
