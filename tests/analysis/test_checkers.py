"""The fixture corpus: every seeded violation fires, nothing else does.

The fixture tree under ``fixtures/violations`` marks each line that must
produce a finding with ``# anl: CODE[,CODE2]``.  The contract asserted
here is exact and two-sided: the analyzer reports precisely the marked
(path, line, code) triples -- a missed marker is a false negative, an
unmarked finding is a false positive.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, load_tree
from repro.analysis.base import framework_findings

FIXTURES = Path(__file__).parent / "fixtures" / "violations"

#: ``# anl: DET001,DET002`` -- the expected-finding marker.
_MARKER = re.compile(r"#\s*anl:\s*(?P<codes>[A-Z0-9,]+)")


def expected_triples() -> set[tuple[str, int, str]]:
    expected: set[tuple[str, int, str]] = set()
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            match = _MARKER.search(line)
            if match is None:
                continue
            for code in match.group("codes").split(","):
                expected.add((rel, lineno, code))
    return expected


def actual_triples() -> set[tuple[str, int, str]]:
    return {
        (finding.path, finding.line, finding.code)
        for finding in analyze_paths([FIXTURES])
    }


def test_corpus_matches_markers_exactly():
    expected = expected_triples()
    actual = actual_triples()
    assert expected, "fixture corpus has no markers -- corpus is broken"
    missed = expected - actual
    surplus = actual - expected
    assert not missed, f"seeded violations not reported: {sorted(missed)}"
    assert not surplus, f"unmarked findings (false positives): {sorted(surplus)}"


def test_every_checker_is_demonstrated():
    prefixes = {code.rstrip("0123456789") for _, _, code in actual_triples()}
    assert {"DET", "PROT", "RES", "WAL", "CFG", "OBS", "ANA"} <= prefixes


def test_select_narrows_to_one_checker():
    codes = {f.code for f in analyze_paths([FIXTURES], select="DET")}
    # Framework findings (ANA*) always run; only DET findings otherwise.
    assert codes == {"DET001", "DET002", "DET003", "ANA001"}


def test_select_accepts_full_codes():
    codes = {f.code for f in analyze_paths([FIXTURES], select="WAL001")}
    assert "WAL001" in codes and "DET001" not in codes


def test_justified_suppression_is_honoured():
    # badnoqa.py line 6 carries a justified noqa[DET002]; line 5's bare
    # noqa suppresses nothing.
    lines = {f.line for f in analyze_paths([FIXTURES]) if f.path == "badnoqa.py"}
    assert lines == {5}


def test_findings_are_sorted_and_unique():
    findings = analyze_paths([FIXTURES])
    keys = [(f.path, f.line, f.code) for f in findings]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


def test_finding_as_dict_shape():
    finding = analyze_paths([FIXTURES])[0]
    payload = finding.as_dict()
    assert set(payload) == {"code", "path", "line", "message"}
    assert isinstance(payload["line"], int)


def test_unparsable_file_is_ana002(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n    pass\n")
    tree = load_tree(tmp_path)
    findings = list(framework_findings(tree))
    assert [f.code for f in findings] == ["ANA002"]
    assert findings[0].path == "broken.py"


def test_unknown_select_raises():
    from repro.analysis import UnknownCheckError

    with pytest.raises(UnknownCheckError):
        analyze_paths([FIXTURES], select="NOPE")
