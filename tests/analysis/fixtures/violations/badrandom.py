"""Seeded DET001/DET002: global randomness and wall-clock reads."""

import random
import time
from random import shuffle  # anl: DET001


def jitter():
    return random.random()  # anl: DET001


def stamp():
    return time.time()  # anl: DET002


def mix(values):
    shuffle(values)
    return values
