"""Seeded CFG violations: dropped fields, lax keys, half a round-trip."""

from dataclasses import dataclass


@dataclass(frozen=True)
class TunerConfig:
    alpha: float
    beta: float

    def as_dict(self) -> dict:  # anl: CFG001
        return {"alpha": self.alpha}

    @classmethod
    def from_dict(cls, payload: dict) -> "TunerConfig":  # anl: CFG002,CFG003
        return cls(alpha=payload["alpha"])


@dataclass(frozen=True)
class HalfConfig:  # anl: CFG004
    gamma: int

    def as_dict(self) -> dict:
        return {"gamma": self.gamma}
