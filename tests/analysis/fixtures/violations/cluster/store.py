"""Seeded WAL001/WAL002 plus out-of-owner RES001/RES002 constructions."""

from multiprocessing.shared_memory import SharedMemory

from ..runtime.wal import WriteAheadLog


class DistributedGraphStore:
    def __init__(self, graph, assignment):
        self.graph = graph
        self.assignment = assignment
        self._replicas = {}
        self.version = 0

    def _mutated(self, *op):
        self.version += 1

    def add_vertex(self, vertex):
        self.graph.add_vertex(vertex)
        self._mutated("v+", vertex)

    def quarantine(self, vertex):
        self.graph.remove_vertex(vertex)
        self._mutated("q?", vertex)  # anl: WAL002

    def rename(self, old, new):  # anl: WAL001
        self.graph.remove_vertex(old)
        self.graph.add_vertex(new)

    def apply_op(self, op):
        tag = op[0]
        if tag == "v+":
            self.add_vertex(op[1])
        elif tag == "zz":  # anl: WAL002
            return None
        return None

    def scratch_segment(self, name, path):
        SharedMemory(name=name, create=False)  # anl: RES001
        WriteAheadLog(path)  # anl: RES002
