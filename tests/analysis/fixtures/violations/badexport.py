"""Seeded DET003: set iteration order leaking into encoded output."""


def export_rows(graph):
    return [vertex for vertex in graph.neighbours(0)]  # anl: DET003


def encode_ids(values):
    ids = set(values)
    out = []
    for item in ids:  # anl: DET003
        out.append(item)
    return out


def export_sorted(graph):
    """Sanitised twin: sorted() consumption must NOT be flagged."""
    return sorted(graph.neighbours(0))
