"""Seeded PROT005: a declared verb with no daemon handler.

Never imported at runtime -- this file exists to be *parsed* by
``tests/analysis``.  The ``anl`` comment markers name the finding each
line must produce (see test_checkers.py).
"""

VERBS = {
    "ping": "liveness",
    "ghost": "declared but never handled",  # anl: PROT005
}
