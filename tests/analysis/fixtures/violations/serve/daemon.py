"""Seeded PROT006: a handler no VERBS entry ever routes to."""


class Host:
    def _verb_ping(self, payload):
        return {"ok": True}

    def _verb_rogue(self, payload):  # anl: PROT006
        return {"ok": False}
