"""Seeded PROT violations: orphan message, unslotted message.

Never imported at runtime -- this file exists to be *parsed* by
``tests/analysis``.  The ``anl`` comment markers name the finding each
line must produce (see test_checkers.py).
"""

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class OrphanPing:  # anl: PROT001
    """Referenced by neither worker.py nor pool.py: dead surface."""

    payload: bytes


@dataclass
class MutableNote:  # anl: PROT002
    """Dispatched by worker.py but not frozen/slotted."""

    text: str


@dataclass(frozen=True, slots=True)
class FetchRequest:
    """Constructed by pool.py; worker.py never dispatches it."""

    rows: int
