"""Seeded PROT003: imports a message the mailbox does not define."""

from .mailbox import GhostReply, MutableNote  # anl: PROT003


def handle(message):
    if isinstance(message, MutableNote):
        return GhostReply()
    return None
