"""Seeded PROT004: coordinator sends a request no worker dispatches."""

from .mailbox import FetchRequest


def request_rows(mailbox):
    mailbox.send(FetchRequest(rows=4))  # anl: PROT004
