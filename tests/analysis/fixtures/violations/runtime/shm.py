"""Seeded RES003: in-owner acquisition with no release on any path."""

from multiprocessing.shared_memory import SharedMemory


def leak_segment(name):
    segment = SharedMemory(name=name, create=True, size=64)  # anl: RES003
    segment.buf[0] = 1
