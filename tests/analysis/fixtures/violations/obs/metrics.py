"""Seeded OBS violations: duplicate declaration, bad metric name."""


class _Registry:
    def counter(self, name, help):
        pass

    def gauge(self, name, help):
        pass

    def histogram(self, name, help):
        pass


registry = _Registry()
registry.counter("pool.spawns", "fine: declared once, well-formed")
registry.gauge("pool.spawns", "second declaration")  # anl: OBS001
registry.counter("QueueDepth", "CamelCase, no dot")  # anl: OBS002
registry.histogram("serve.Verb_seconds", "bad segment")  # anl: OBS002
