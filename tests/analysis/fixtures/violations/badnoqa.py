"""Seeded ANA001: a bare suppression neither suppresses nor justifies."""

import time

stamp = time.time()  # anl: ANA001,DET002  # repro: noqa[DET002]
sanctioned = time.time()  # repro: noqa[DET002] -- fixture: a justified suppression is honoured
