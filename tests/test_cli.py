"""Tests for the command-line interface."""

import random

import pytest

from repro.cli import main
from repro.graph.generators import erdos_renyi
from repro.graph.io import save_edge_list


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("E1", "E10", "A4"):
            assert eid in out


class TestDemo:
    def test_demo_shows_square_colocation(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "loom" in out
        assert "q1-square-colocated=yes" in out


class TestExperiment:
    def test_single_experiment_prints_table(self, capsys):
        assert main(["experiment", "E7", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "E7a" in out
        assert "collision" in out

    def test_csv_output(self, tmp_path, capsys):
        assert main(
            ["experiment", "A2", "--fast", "--out", str(tmp_path)]
        ) == 0
        csvs = list(tmp_path.glob("a2_*.csv"))
        assert csvs
        assert "group_matches" in csvs[0].read_text()

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["experiment", "E99", "--fast"])


class TestPartition:
    def test_partition_edge_list_file(self, tmp_path, capsys):
        graph = erdos_renyi(40, 0.15, rng=random.Random(3))
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert main(
            ["partition", "--graph", str(path), "--method", "ldg", "-k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "cut_fraction=" in out
        assert "sizes=" in out

    def test_partition_with_loom_samples_workload(self, tmp_path, capsys):
        graph = erdos_renyi(40, 0.15, rng=random.Random(4))
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert main(
            [
                "partition", "--graph", str(path), "--method", "loom",
                "-k", "2", "--window", "16", "--queries", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "p_remote=" in out
