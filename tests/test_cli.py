"""Tests for the command-line interface."""

import json
import random

from repro.cli import EXIT_USAGE, main
from repro.graph.generators import erdos_renyi
from repro.graph.io import save_edge_list


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("E1", "E10", "A4"):
            assert eid in out


class TestDemo:
    def test_demo_shows_square_colocation(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "loom" in out
        assert "q1-square-colocated=yes" in out


class TestExperiment:
    def test_single_experiment_prints_table(self, capsys):
        assert main(["experiment", "E7", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "E7a" in out
        assert "collision" in out

    def test_csv_output(self, tmp_path, capsys):
        assert main(
            ["experiment", "A2", "--fast", "--out", str(tmp_path)]
        ) == 0
        csvs = list(tmp_path.glob("a2_*.csv"))
        assert csvs
        assert "group_matches" in csvs[0].read_text()

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert main(["experiment", "E99", "--fast"]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "E99" in err

    def test_json_output(self, capsys):
        assert main(["experiment", "A2", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        (experiment,) = payload["experiments"]
        assert experiment["id"] == "A2"
        table = experiment["tables"][0]
        assert "group_matches" in table["columns"]
        assert table["rows"]


class TestPartition:
    def test_partition_edge_list_file(self, tmp_path, capsys):
        graph = erdos_renyi(40, 0.15, rng=random.Random(3))
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert main(
            ["partition", "--graph", str(path), "--method", "ldg", "-k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "cut_fraction=" in out
        assert "sizes=" in out

    def test_partition_with_loom_samples_workload(self, tmp_path, capsys):
        graph = erdos_renyi(40, 0.15, rng=random.Random(4))
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert main(
            [
                "partition", "--graph", str(path), "--method", "loom",
                "-k", "2", "--window", "16", "--queries", "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "p_remote=" in out

    def test_partition_json_output(self, tmp_path, capsys):
        graph = erdos_renyi(30, 0.15, rng=random.Random(5))
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert main(
            [
                "partition", "--graph", str(path), "--method", "ldg",
                "-k", "2", "--json",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "ldg"
        assert payload["k"] == 2
        assert sum(payload["sizes"]) == 30
        assert 0.0 <= payload["cut_fraction"] <= 1.0

    def test_unknown_method_exits_nonzero(self, tmp_path, capsys):
        graph = erdos_renyi(10, 0.3, rng=random.Random(6))
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert main(
            ["partition", "--graph", str(path), "--method", "nope"]
        ) == EXIT_USAGE
        assert "unknown method" in capsys.readouterr().err

    def test_missing_graph_file_exits_nonzero(self, tmp_path, capsys):
        assert main(
            ["partition", "--graph", str(tmp_path / "absent.txt")]
        ) == EXIT_USAGE
        assert "cannot read graph file" in capsys.readouterr().err


def snapshot_file(tmp_path):
    """A small snapshotted cluster for the churn verbs to chew on."""
    from repro.api import Cluster, ClusterConfig
    from repro.graph.generators import planted_partition

    graph = planted_partition(30, 2, 0.3, 0.05, rng=random.Random(9))
    session = Cluster.open(
        ClusterConfig(partitions=2, method="hash", seed=9)
    )
    session.ingest(graph)
    target = tmp_path / "cluster.json"
    session.snapshot(target)
    return target, session


class TestRetractVerb:
    def test_retract_vertex_writes_updated_snapshot(self, tmp_path, capsys):
        source, session = snapshot_file(tmp_path)
        out = tmp_path / "after.json"
        assert main(
            ["retract", "--snapshot", str(source), "--vertex", "0",
             "--out", str(out)]
        ) == 0
        stdout = capsys.readouterr().out
        assert "retracted 1 vertices" in stdout
        payload = json.loads(out.read_text())
        assert 0 not in [v for v, _ in payload["graph"]["vertices"]]

    def test_retract_edge_json_report(self, tmp_path, capsys):
        source, session = snapshot_file(tmp_path)
        u, v = next(iter(session.graph.edges()))
        assert main(
            ["retract", "--snapshot", str(source),
             "--edge", str(u), str(v), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["edges_removed"] == 1
        assert payload["vertices_removed"] == 0

    def test_retract_unknown_vertex_exits_nonzero(self, tmp_path, capsys):
        source, _ = snapshot_file(tmp_path)
        assert main(
            ["retract", "--snapshot", str(source), "--vertex", "999"]
        ) == EXIT_USAGE
        assert "not resident" in capsys.readouterr().err

    def test_retract_missing_snapshot_exits_nonzero(self, tmp_path, capsys):
        assert main(
            ["retract", "--snapshot", str(tmp_path / "none.json"),
             "--vertex", "0"]
        ) == EXIT_USAGE
        assert "cannot read snapshot" in capsys.readouterr().err


class TestRebalanceVerb:
    def test_rebalance_reports_delta(self, tmp_path, capsys):
        source, _ = snapshot_file(tmp_path)
        assert main(
            ["rebalance", "--snapshot", str(source), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cut_after"] <= payload["cut_before"]
        assert payload["moved_vertices"] >= 0

    def test_rebalance_respects_budget_and_writes_out(self, tmp_path, capsys):
        source, _ = snapshot_file(tmp_path)
        out = tmp_path / "after.json"
        assert main(
            ["rebalance", "--snapshot", str(source), "--max-moves", "2",
             "--out", str(out), "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["moved_vertices"] <= 2
        assert out.exists()
