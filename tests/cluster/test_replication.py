"""Tests for store replicas, per-edge profiling and the hotspot replicator."""

import random

import pytest

from repro.cluster import DistributedGraphStore, run_workload
from repro.cluster.executor import TraversalLedger
from repro.exceptions import ConfigurationError, PartitioningError
from repro.partitioning import PartitionAssignment
from repro.replication import HotspotReplicator
from repro.workload import figure1_graph, figure1_workload


def split_store() -> DistributedGraphStore:
    graph = figure1_graph()
    assignment = PartitionAssignment(2, 8)
    for vertex, partition in {
        1: 0, 5: 0, 3: 0, 4: 0, 2: 1, 6: 1, 7: 1, 8: 1
    }.items():
        assignment.assign(vertex, partition)
    return DistributedGraphStore(graph, assignment)


class TestReplicas:
    def test_add_replica_makes_hop_local(self):
        store = split_store()
        assert store.is_remote(1, 2)
        assert store.add_replica(2, 0)
        assert not store.is_remote(1, 2)   # 1 reads the local copy of 2
        assert store.is_remote(2, 1) is False or True  # direction-specific

    def test_replica_into_home_partition_is_noop(self):
        store = split_store()
        assert not store.add_replica(1, 0)
        assert store.total_replicas() == 0

    def test_duplicate_replica_is_noop(self):
        store = split_store()
        assert store.add_replica(2, 0)
        assert not store.add_replica(2, 0)
        assert store.total_replicas() == 1

    def test_out_of_range_partition_rejected(self):
        store = split_store()
        with pytest.raises(PartitioningError):
            store.add_replica(2, 5)

    def test_replication_factor(self):
        store = split_store()
        assert store.replication_factor() == 1.0
        store.add_replica(2, 0)
        store.add_replica(6, 0)
        assert store.replication_factor() == pytest.approx(1.0 + 2 / 8)

    def test_replicas_of(self):
        store = split_store()
        store.add_replica(2, 0)
        assert store.replicas_of(2) == frozenset({0})
        assert store.replicas_of(1) == frozenset()


class TestEdgeTracking:
    def test_ledger_edge_counts(self):
        ledger = TraversalLedger(track_edges=True)
        ledger.record(True, edge=(1, 2))
        ledger.record(False, edge=(1, 2))
        ledger.record(True, edge=(2, 3))
        assert ledger.edge_counts == {(1, 2): 2, (2, 3): 1}
        assert ledger.hottest_edges(1) == [(1, 2)]

    def test_untracked_ledger_keeps_no_edges(self):
        ledger = TraversalLedger()
        ledger.record(True, edge=(1, 2))
        assert ledger.edge_counts == {}

    def test_merge_combines_edge_counts(self):
        a = TraversalLedger(track_edges=True)
        b = TraversalLedger(track_edges=True)
        a.record(True, edge=(1, 2))
        b.record(True, edge=(1, 2))
        a.merge(b)
        assert a.edge_counts[(1, 2)] == 2

    def test_run_workload_tracks_edges(self):
        stats = run_workload(
            split_store(), figure1_workload(), executions=10,
            rng=random.Random(1), track_edges=True,
        )
        assert stats.ledger.edge_counts
        # Every tracked edge is a real graph edge.
        graph = figure1_graph()
        for u, v in stats.ledger.edge_counts:
            assert graph.has_edge(u, v)


class TestHotspotReplicator:
    def test_bad_parameters(self):
        store = split_store()
        with pytest.raises(ConfigurationError):
            HotspotReplicator(store, budget=-1)
        with pytest.raises(ConfigurationError):
            HotspotReplicator(store, budget=2, batch_size=0)

    def test_zero_budget_changes_nothing(self):
        store = split_store()
        report = HotspotReplicator(store, budget=0).run(
            figure1_workload(), executions=10, rng=random.Random(2)
        )
        assert report.replicas_added == 0
        assert store.total_replicas() == 0
        assert report.remote_probability_after == report.remote_probability_before

    def test_replication_reduces_remote_probability(self):
        store = split_store()
        report = HotspotReplicator(store, budget=6).run(
            figure1_workload(), executions=30, rng=random.Random(3)
        )
        assert report.replicas_added > 0
        assert report.remote_probability_after < report.remote_probability_before

    def test_budget_respected(self):
        store = split_store()
        report = HotspotReplicator(store, budget=3, batch_size=2).run(
            figure1_workload(), executions=20, rng=random.Random(4)
        )
        assert report.replicas_added <= 3
        assert store.total_replicas() == report.replicas_added

    def test_stops_when_everything_local(self):
        # One-partition store has no crossings to dissipate.
        graph = figure1_graph()
        assignment = PartitionAssignment(1, 8)
        for vertex in graph.vertices():
            assignment.assign(vertex, 0)
        store = DistributedGraphStore(graph, assignment)
        report = HotspotReplicator(store, budget=10).run(
            figure1_workload(), executions=10, rng=random.Random(5)
        )
        assert report.replicas_added == 0

    def test_history_records_each_step(self):
        store = split_store()
        report = HotspotReplicator(store, budget=4, batch_size=2).run(
            figure1_workload(), executions=20, rng=random.Random(6)
        )
        assert len(report.history) == report.steps + 1
