"""Incremental store maintenance: parity with build-at-end construction."""

import random

import pytest

from repro.bench.harness import partition_with
from repro.cluster import DistributedGraphStore, run_workload
from repro.exceptions import PartitioningError
from repro.graph import LabelledGraph
from repro.graph.generators import plant_motifs
from repro.stream.events import VertexArrival
from repro.stream.sources import stream_from_graph
from repro.workload import PatternQuery, Workload


@pytest.fixture(scope="module")
def finished():
    rng = random.Random(2)
    abc = LabelledGraph.path("abc")
    graph = plant_motifs(
        [(abc, 15)], noise_vertices=40, noise_edge_probability=0.01, rng=rng
    )
    events = stream_from_graph(graph, ordering="random", rng=random.Random(3))
    result = partition_with("ldg", graph, events, k=4, seed=1)
    workload = Workload([PatternQuery("abc", abc)])
    return graph, events, result.assignment, workload


def build_incremental(graph, events, assignment):
    """Feed the store exactly as a session ingest does: graph elements in
    stream order, then each placement as it happened."""
    store = DistributedGraphStore.incremental(
        assignment.k, assignment.capacity
    )
    for event in events:
        if isinstance(event, VertexArrival):
            store.add_vertex(event.vertex, event.label)
        else:
            store.add_edge(event.u, event.v)
    for vertex, partition in assignment.assigned().items():
        assert not store.is_complete
        store.assign_vertex(vertex, partition)
    return store


class TestParityWithBuildAtEnd:
    def test_structure_and_locality_identical(self, finished):
        graph, events, assignment, _ = finished
        built = DistributedGraphStore(graph, assignment)
        incremental = build_incremental(graph, events, assignment)
        assert incremental.is_complete
        assert set(incremental.graph.vertices()) == set(graph.vertices())
        assert set(incremental.graph.edges()) == set(graph.edges())
        for vertex in graph.vertices():
            assert incremental.label(vertex) == built.label(vertex)
            assert incremental.partition_of(vertex) == built.partition_of(
                vertex
            )
            assert incremental.neighbours(vertex) == built.neighbours(vertex)
        for u, v in graph.edges():
            assert incremental.is_remote(u, v) == built.is_remote(u, v)
        for label in graph.labels():
            assert sorted(
                incremental.vertices_with_label(label), key=repr
            ) == sorted(built.vertices_with_label(label), key=repr)
        assert incremental.shard_sizes() == built.shard_sizes()

    def test_query_results_identical(self, finished):
        graph, events, assignment, workload = finished
        built = DistributedGraphStore(graph, assignment)
        incremental = build_incremental(graph, events, assignment)
        expected = run_workload(
            built, workload, executions=40, rng=random.Random(7)
        )
        observed = run_workload(
            incremental, workload, executions=40, rng=random.Random(7)
        )
        assert observed.matches == expected.matches
        assert observed.remote_probability == expected.remote_probability
        assert observed.fully_local == expected.fully_local


class TestIncrementalContract:
    def test_default_constructor_still_requires_completeness(self, finished):
        graph, _, _, _ = finished
        from repro.partitioning.base import PartitionAssignment

        empty = PartitionAssignment(2, graph.num_vertices)
        with pytest.raises(PartitioningError, match="complete assignment"):
            DistributedGraphStore(graph, empty)

    def test_assign_vertex_enforces_range_and_uniqueness(self):
        store = DistributedGraphStore.incremental(2, 4)
        store.add_vertex(1, "a")
        with pytest.raises(PartitioningError):
            store.assign_vertex(1, 5)
        store.assign_vertex(1, 0)
        with pytest.raises(PartitioningError):
            store.assign_vertex(1, 1)

    def test_duplicate_edge_mirroring_is_idempotent(self):
        store = DistributedGraphStore.incremental(2, 4)
        store.add_vertex(1, "a")
        store.add_vertex(2, "b")
        store.add_edge(1, 2)
        store.add_edge(2, 1)
        assert store.graph.num_edges == 1


class TestIncrementalRemoval:
    def churned(self):
        store = DistributedGraphStore.incremental(2, 4)
        for vertex, label in ((1, "a"), (2, "b"), (3, "a"), (4, "b")):
            store.add_vertex(vertex, label)
            store.assign_vertex(vertex, vertex % 2)
        for u, v in ((1, 2), (2, 3), (3, 4), (4, 1)):
            store.add_edge(u, v)
        return store

    def test_removal_parity_with_fresh_build(self):
        """A store that removed elements equals one built from only the
        survivors -- graph, placement, locality and label index."""
        churned = self.churned()
        churned.remove_edge(1, 2)
        churned.remove_vertex(4)
        survivor = DistributedGraphStore.incremental(2, 4)
        for vertex, label in ((1, "a"), (2, "b"), (3, "a")):
            survivor.add_vertex(vertex, label)
            survivor.assign_vertex(vertex, vertex % 2)
        survivor.add_edge(2, 3)
        assert churned.graph == survivor.graph
        assert churned.assignment.assigned() == survivor.assignment.assigned()
        assert churned.shard_sizes() == survivor.shard_sizes()
        assert churned.is_complete
        for label in ("a", "b"):
            assert churned.vertices_with_label(label) == (
                survivor.vertices_with_label(label)
            )
        assert churned.is_remote(2, 3) == survivor.is_remote(2, 3)

    def test_remove_vertex_cascades_and_purges_replicas(self):
        store = self.churned()
        assert store.add_replica(1, 0) or store.add_replica(1, 1)
        edges_before = store.graph.num_edges
        store.remove_vertex(1)
        assert store.graph.num_edges == edges_before - 2
        assert store.replicas_of(1) == frozenset()
        assert store.total_replicas() == 0
        assert store.assignment.partition_of(1) is None
        assert store.is_complete  # survivors all still placed

    def test_remove_missing_elements_raise(self):
        store = self.churned()
        with pytest.raises(KeyError):
            store.remove_vertex(99)
        with pytest.raises(KeyError):
            store.remove_edge(1, 3)

    def test_move_vertex_absorbs_replica_at_target(self):
        store = self.churned()
        home = store.partition_of(1)
        target = 1 - home
        assert store.add_replica(1, target)
        assert store.move_vertex(1, target) is True
        assert store.partition_of(1) == target
        assert store.replicas_of(1) == frozenset()
        assert store.move_vertex(1, home) is False
