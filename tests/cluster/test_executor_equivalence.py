"""Property test: the distributed executor agrees with the reference matcher.

Whatever the partitioning, distribution must never change query *answers*
-- only their communication cost.  This is the correctness contract of
the whole cluster simulation, so it gets its own property test across
random graphs, workloads and partitionings.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DistributedGraphStore, DistributedQueryExecutor
from repro.graph.generators import erdos_renyi
from repro.graph.isomorphism import find_matches
from repro.partitioning import HashPartitioner, partition_graph
from repro.workload.workloads import workload_from_graph


class TestExecutorEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([1, 2, 4]),
    )
    def test_match_counts_equal_reference(self, seed, k):
        rng = random.Random(seed)
        graph = erdos_renyi(25, 0.15, rng=rng)
        if graph.num_edges == 0:
            return
        workload = workload_from_graph(
            graph, count=3, min_size=2, max_size=3, rng=random.Random(seed + 1)
        )
        assignment = partition_graph(
            HashPartitioner(), graph, k=k, rng=random.Random(seed + 2)
        )
        executor = DistributedQueryExecutor(
            DistributedGraphStore(graph, assignment)
        )
        for query in workload:
            distributed = executor.execute(query).matches
            reference = len(find_matches(query.graph, graph))
            assert distributed == reference

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_partitioning_never_changes_answers(self, seed):
        """Same graph, two different partitionings: identical answers."""
        rng = random.Random(seed)
        graph = erdos_renyi(20, 0.2, rng=rng)
        if graph.num_edges == 0:
            return
        workload = workload_from_graph(
            graph, count=2, min_size=2, max_size=3, rng=random.Random(seed + 1)
        )
        counts = []
        for k in (1, 3):
            assignment = partition_graph(
                HashPartitioner(), graph, k=k, rng=random.Random(seed + 2)
            )
            executor = DistributedQueryExecutor(
                DistributedGraphStore(graph, assignment)
            )
            counts.append(
                tuple(executor.execute(q).matches for q in workload)
            )
        assert counts[0] == counts[1]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_replicas_never_change_answers(self, seed):
        """Replication affects locality, never correctness."""
        rng = random.Random(seed)
        graph = erdos_renyi(20, 0.2, rng=rng)
        if graph.num_edges == 0:
            return
        workload = workload_from_graph(
            graph, count=2, min_size=2, max_size=3, rng=random.Random(seed + 1)
        )
        assignment = partition_graph(
            HashPartitioner(), graph, k=3, rng=random.Random(seed + 2)
        )
        store = DistributedGraphStore(graph, assignment)
        executor = DistributedQueryExecutor(store)
        before = [executor.execute(q).matches for q in workload]
        # Replicate a few arbitrary vertices everywhere.
        for vertex in list(graph.vertices())[:5]:
            for partition in range(3):
                store.add_replica(vertex, partition)
        after = [executor.execute(q).matches for q in workload]
        assert before == after
