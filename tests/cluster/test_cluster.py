"""Tests for the distributed store, instrumented executor and latency model."""

import random

import pytest

from repro.cluster import (
    DistributedGraphStore,
    DistributedQueryExecutor,
    LatencyModel,
    TraversalLedger,
    run_workload,
)
from repro.exceptions import ConfigurationError, PartitioningError
from repro.graph import LabelledGraph
from repro.partitioning import PartitionAssignment
from repro.workload import PatternQuery, figure1_graph, figure1_workload


def store_with(assignments: dict, k=2, capacity=8) -> DistributedGraphStore:
    g = figure1_graph()
    a = PartitionAssignment(k, capacity)
    for vertex, partition in assignments.items():
        a.assign(vertex, partition)
    return DistributedGraphStore(g, a)


def all_local_store() -> DistributedGraphStore:
    return store_with({v: 0 for v in range(1, 9)})


def split_store() -> DistributedGraphStore:
    # The q1 square {1,2,5,6} is split down the middle.
    return store_with({1: 0, 5: 0, 3: 0, 4: 0, 2: 1, 6: 1, 7: 1, 8: 1})


class TestStore:
    def test_requires_complete_assignment(self):
        g = figure1_graph()
        a = PartitionAssignment(2, 8)
        a.assign(1, 0)
        with pytest.raises(PartitioningError):
            DistributedGraphStore(g, a)

    def test_label_index(self):
        store = all_local_store()
        assert sorted(store.vertices_with_label("a")) == [1, 6]

    def test_is_remote(self):
        store = split_store()
        assert store.is_remote(1, 2)
        assert not store.is_remote(1, 5)

    def test_shard_sizes(self):
        assert split_store().shard_sizes() == [4, 4]


class TestLedger:
    def test_counts_and_probability(self):
        ledger = TraversalLedger()
        ledger.record(False)
        ledger.record(True)
        ledger.record(True)
        assert ledger.total == 3
        assert ledger.remote_probability == pytest.approx(2 / 3)

    def test_empty_probability_zero(self):
        assert TraversalLedger().remote_probability == 0.0

    def test_merge(self):
        a = TraversalLedger(local=1, remote=2)
        b = TraversalLedger(local=3, remote=4)
        a.merge(b)
        assert (a.local, a.remote) == (4, 6)

    def test_cost(self):
        ledger = TraversalLedger(local=10, remote=2)
        assert ledger.cost(LatencyModel(1.0, 100.0)) == 210.0


class TestLatencyModel:
    def test_defaults_valid(self):
        model = LatencyModel()
        assert model.cost(1, 1) == 101.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(local_cost=-1.0)

    def test_inverted_costs_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(local_cost=10.0, remote_cost=1.0)


class TestExecutor:
    def test_finds_paper_q1_answer(self):
        executor = DistributedQueryExecutor(all_local_store())
        q1 = figure1_workload().queries[0]
        result = executor.execute(q1)
        assert result.matches == 1

    def test_single_partition_fully_local(self):
        executor = DistributedQueryExecutor(all_local_store())
        for query in figure1_workload():
            result = executor.execute(query)
            assert result.fully_local
            assert result.ledger.remote == 0
            assert result.ledger.local > 0

    def test_split_square_causes_remote_traversals(self):
        executor = DistributedQueryExecutor(split_store())
        q1 = figure1_workload().queries[0]
        result = executor.execute(q1)
        assert result.matches == 1          # correctness unaffected by split
        assert result.ledger.remote > 0     # but communication appears

    def test_single_vertex_query_uses_index_only(self):
        executor = DistributedQueryExecutor(all_local_store())
        q = PatternQuery("just_a", LabelledGraph.from_edges({0: "a"}))
        result = executor.execute(q)
        assert result.matches == 2          # vertices 1 and 6
        assert result.ledger.total == 0     # label index, no traversals

    def test_match_counts_agree_with_reference_matcher(self):
        store = split_store()
        executor = DistributedQueryExecutor(store)
        for query in figure1_workload():
            distributed = executor.execute(query).matches
            reference = len(query.answer(store.graph))
            assert distributed == reference

    def test_traversal_counts_on_tiny_example(self):
        # Path a-b split across partitions: matching a-b explores each
        # neighbour of the anchor once.
        g = LabelledGraph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        a = PartitionAssignment(2, 2)
        a.assign(0, 0)
        a.assign(1, 1)
        store = DistributedGraphStore(g, a)
        result = DistributedQueryExecutor(store).execute(
            PatternQuery("ab", LabelledGraph.path("ab"))
        )
        assert result.matches == 1
        assert result.ledger.remote == 1
        assert result.ledger.local == 0


class TestRunWorkload:
    def test_aggregates_over_samples(self):
        stats = run_workload(
            split_store(), figure1_workload(), executions=30,
            rng=random.Random(1),
        )
        assert stats.executions == 30
        assert stats.matches > 0
        assert 0.0 <= stats.remote_probability <= 1.0

    def test_all_local_store_is_fully_local(self):
        stats = run_workload(
            all_local_store(), figure1_workload(), executions=20,
            rng=random.Random(2),
        )
        assert stats.fully_local_rate == 1.0
        assert stats.remote_probability == 0.0

    def test_split_store_is_worse(self):
        local = run_workload(
            all_local_store(), figure1_workload(), executions=30,
            rng=random.Random(3),
        )
        split = run_workload(
            split_store(), figure1_workload(), executions=30,
            rng=random.Random(3),
        )
        assert split.remote_probability > local.remote_probability
        model = LatencyModel()
        assert split.mean_cost(model) > local.mean_cost(model)
