"""Tests for result tables and charts."""

import pytest

from repro.bench import Table, ascii_bar_chart


class TestTable:
    def make(self):
        t = Table("demo", ["method", "cut"])
        t.add_row(method="ldg", cut=0.1234)
        t.add_row(method="hash", cut=0.75)
        return t

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            Table("empty", [])

    def test_unknown_column_rejected(self):
        t = self.make()
        with pytest.raises(ValueError):
            t.add_row(method="x", bogus=1)

    def test_missing_columns_blank(self):
        t = Table("demo", ["a", "b"])
        t.add_row(a="only")
        assert t.rows[0]["b"] == ""

    def test_render_contains_title_header_and_rows(self):
        text = self.make().render()
        assert "demo" in text
        assert "method" in text
        assert "0.1234" in text
        assert "hash" in text

    def test_render_aligns_columns(self):
        lines = self.make().render().splitlines()
        header, rule, *rows = lines[1:]
        assert len(rule) == len(header)

    def test_float_formatting(self):
        t = Table("t", ["x"])
        t.add_row(x=0.123456789)
        assert "0.1235" in t.render()

    def test_bool_formatting(self):
        t = Table("t", ["x"])
        t.add_row(x=True)
        assert "yes" in t.render()

    def test_csv_roundtrippable(self):
        csv = self.make().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "method,cut"
        assert len(lines) == 3

    def test_save_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        self.make().save_csv(path)
        assert path.read_text().startswith("method,cut")

    def test_column_accessor(self):
        assert self.make().column("method") == ["ldg", "hash"]
        with pytest.raises(ValueError):
            self.make().column("nope")

    def test_len(self):
        assert len(self.make()) == 2

    def test_empty_table_renders(self):
        t = Table("empty", ["a"])
        assert "empty" in t.render()


class TestBarChart:
    def test_basic_render(self):
        chart = ascii_bar_chart("title", ["a", "b"], [1.0, 0.5])
        assert "title" in chart
        assert chart.count("#") > 0

    def test_peak_gets_full_width(self):
        chart = ascii_bar_chart("t", ["x"], [2.0], width=10)
        assert "#" * 10 in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart("t", ["a"], [1.0, 2.0])

    def test_empty_ok(self):
        assert "t" in ascii_bar_chart("t", [], [])

    def test_zero_values_no_division_error(self):
        chart = ascii_bar_chart("t", ["a"], [0.0])
        assert "0.0000" in chart
