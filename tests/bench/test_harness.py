"""Tests for the experiment harness (method registry + evaluation)."""

import random

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment
from repro.bench.harness import (
    STREAMING_METHODS,
    evaluate_assignment,
    partition_with,
)
from repro.graph import LabelledGraph
from repro.graph.generators import plant_motifs
from repro.stream.sources import stream_from_graph
from repro.workload import PatternQuery, Workload


@pytest.fixture(scope="module")
def testbed():
    motif = LabelledGraph.path("abc")
    graph = plant_motifs([(motif, 15)], noise_vertices=20,
                         noise_edge_probability=0.01, rng=random.Random(1))
    workload = Workload([PatternQuery("abc", motif)])
    events = stream_from_graph(graph, ordering="random", rng=random.Random(2))
    return graph, workload, events


class TestPartitionWith:
    @pytest.mark.parametrize("method", sorted(STREAMING_METHODS))
    def test_streaming_methods(self, testbed, method):
        graph, workload, events = testbed
        result = partition_with(method, graph, events, k=4)
        assert result.assignment.num_assigned == graph.num_vertices
        assert result.seconds >= 0.0

    def test_offline(self, testbed):
        graph, workload, events = testbed
        result = partition_with("offline", graph, events, k=4)
        assert result.assignment.num_assigned == graph.num_vertices

    @pytest.mark.parametrize("method", ["loom", "loom_ta"])
    def test_loom_variants(self, testbed, method):
        graph, workload, events = testbed
        result = partition_with(
            method, graph, events, k=4, workload=workload, window_size=32
        )
        assert result.assignment.num_assigned == graph.num_vertices

    def test_loom_without_workload_rejected(self, testbed):
        graph, _, events = testbed
        with pytest.raises(ValueError):
            partition_with("loom", graph, events, k=4)

    def test_unknown_method_rejected(self, testbed):
        graph, _, events = testbed
        with pytest.raises(ValueError):
            partition_with("metis", graph, events, k=4)

    def test_capacity_override(self, testbed):
        graph, _, events = testbed
        result = partition_with("hash", graph, events, k=2, capacity=40)
        assert result.assignment.capacity == 40

    def test_cut_and_load_helpers(self, testbed):
        graph, _, events = testbed
        result = partition_with("hash", graph, events, k=4)
        assert 0.0 <= result.cut_fraction(graph) <= 1.0
        assert result.max_load() >= 1.0


class TestEvaluateAssignment:
    def test_metrics_in_range(self, testbed):
        graph, workload, events = testbed
        result = partition_with("ldg", graph, events, k=4)
        ev = evaluate_assignment(graph, result, workload, executions=20)
        assert 0.0 <= ev.remote_probability <= 1.0
        assert 0.0 <= ev.fully_local_rate <= 1.0
        assert ev.mean_cost >= 0.0

    def test_single_partition_no_remote(self, testbed):
        graph, workload, events = testbed
        result = partition_with("hash", graph, events, k=1)
        ev = evaluate_assignment(graph, result, workload, executions=10)
        assert ev.remote_probability == 0.0
        assert ev.fully_local_rate == 1.0


class TestRegistry:
    def test_all_ids_registered(self):
        expected = {f"E{i}" for i in range(1, 16)} | {"A1", "A2", "A3", "A4"}
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_case_insensitive_lookup(self):
        tables = run_experiment("e7", fast=True)
        assert tables

    def test_experiments_return_tables(self):
        for eid in ("E7", "A3"):
            tables = run_experiment(eid, fast=True)
            assert tables
            for table in tables:
                assert len(table) > 0
