"""Schema tests: every experiment produces well-formed tables in fast mode.

These run all nineteen experiments end to end (small grids), asserting the
table schemas the benchmarks and EXPERIMENTS.md rely on.  They double as
integration smoke tests of the full pipeline behind each experiment.
"""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_experiment

EXPECTED_COLUMNS = {
    "E1": [["graph", "k", "hash", "ldg", "fennel", "offline",
            "ldg_vs_hash_reduction"]],
    "E2": [["graph", "method", "cut", "rho", "p_remote", "local_rate", "cost"]],
    "E3": [["ordering", "method", "cut", "p_remote"]],
    "E4": [["window", "cut", "p_remote", "groups", "group_vertices"],
           ["method", "cut", "p_remote"]],
    "E5": [["threshold", "frequent_motifs", "cut", "p_remote", "groups"]],
    "E6": [["method", "k", "rho", "max_size", "min_size", "capacity"]],
    "E7": [
        ["pairs", "isomorphic_pairs", "signature_equal_pairs", "collisions",
         "collision_rate", "max_signature_bits"],
        ["queries", "max_query_size", "nodes", "build_seconds"],
        ["matches_checked", "verified", "precision",
         "trusted_hits", "verified_hits", "evictions"],
    ],
    "E8": [["graph", "query", "method", "remote_per_query", "local_rate",
            "cost"]],
    "E9": [["n", "hash", "ldg", "fennel", "loom", "offline"]],
    "E10": [["k", "hash", "ldg", "loom"]],
    "E11": [["graph", "method", "cut", "rho", "p_remote", "local_rate",
             "cost"]],
    "E12": [["method", "budget", "replicas_added", "replication_factor",
             "p_remote"]],
    "E13": [
        ["delete_fraction", "events", "removals", "events_per_second",
         "retracted_matches", "evicted_matches", "survivors", "state_ok"],
        ["delete_fraction", "candidates", "moved", "cut_before", "cut_after"],
    ],
    "E14": [
        ["graph_vertices", "graph_edges", "executions", "seconds",
         "queries_per_second"],
        ["workers", "wall_seconds", "makespan_seconds",
         "queries_per_second", "speedup", "identical"],
    ],
    "E15": [
        ["graph_vertices", "graph_edges", "workers", "start_method",
         "snapshot_bytes"],
        ["mutations", "mutated_fraction", "delta_bytes", "full_bytes",
         "bytes_ratio", "delta_ms", "full_ms", "speedup"],
    ],
    "A1": [["resignature_fix", "regrown_matches", "groups", "cut",
            "p_remote"]],
    "A2": [["group_matches", "groups", "cut", "p_remote"]],
    "A3": [
        ["structure", "nodes", "frequent_motifs", "largest_motif_edges"],
        ["structure", "cut", "p_remote", "groups"],
    ],
    "A4": [["method", "cut", "p_remote"]],
}


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_schema(experiment_id):
    tables = run_experiment(experiment_id, seed=0, fast=True)
    expected = EXPECTED_COLUMNS[experiment_id]
    assert len(tables) == len(expected), f"{experiment_id}: table count"
    for table, columns in zip(tables, expected, strict=True):
        assert table.columns == columns, f"{experiment_id}: {table.title}"
        assert len(table) > 0, f"{experiment_id}: {table.title} is empty"
        # Every row must format cleanly (render exercises the formatter).
        rendered = table.render()
        assert table.title in rendered


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_deterministic(experiment_id):
    """Same seed, same tables -- the reproducibility contract."""
    if experiment_id in ("E9", "E14", "E15"):  # wall-clock rates / speedups
        pytest.skip("timing-based table")
    first = run_experiment(experiment_id, seed=3, fast=True)
    second = run_experiment(experiment_id, seed=3, fast=True)
    for a, b in zip(first, second, strict=True):
        non_timing = [
            c for c in a.columns
            if "seconds" not in c and not c.endswith("per_second")
        ]
        for row_a, row_b in zip(a.rows, b.rows, strict=True):
            for column in non_timing:
                assert row_a[column] == row_b[column], (
                    f"{experiment_id}:{a.title}:{column}"
                )
