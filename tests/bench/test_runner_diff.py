"""The BENCH baseline diff (perf trajectory across PRs) and the nightly
bench-trend regression gate."""

import pytest

from repro.bench.runner import (
    SCHEMA,
    diff_bench,
    headline_speedups,
    load_bench_json,
    speedup_regressions,
    write_bench_json,
)


def payload(seconds_by_id, hotpath=None, scaling=None):
    out = {
        "schema": SCHEMA,
        "experiments": {
            eid: {"title": eid, "seconds": seconds, "tables": 1}
            for eid, seconds in seconds_by_id.items()
        },
    }
    if hotpath is not None:
        out["hotpath"] = hotpath
    if scaling is not None:
        out["scaling"] = {"speedups": scaling}
    return out


def test_diff_reports_delta_and_ratio():
    current = payload({"E1": 0.5}, hotpath={"loom_speedup": 1.5})
    baseline = payload({"E1": 1.0}, hotpath={"loom_speedup": 1.0})
    lines = diff_bench(current, baseline)
    assert any("E1" in line and "2.00x" in line and "-0.500s" in line
               for line in lines)
    assert any("loom_speedup: 1.5x vs 1.0x" in line for line in lines)


def test_diff_handles_missing_baseline_experiment():
    lines = diff_bench(payload({"E9": 0.1}), payload({}))
    assert lines == ["E9      0.100s (no baseline)"]


def test_headline_speedups_take_top_of_scaling_curve():
    speedups = headline_speedups(
        payload(
            {},
            hotpath={"loom_speedup": 1.5, "ldg_speedup": 1.6},
            scaling={
                "scaling_2w_speedup": 1.7,
                "scaling_4w_speedup": 2.9,
                "scaling_1w_speedup": 0.9,
            },
        )
    )
    # Hot-path numbers pass through; only the largest worker count of
    # the scaling curve is a gated headline (intermediate points are
    # too noisy on shared runners).
    assert speedups == {
        "loom_speedup": 1.5,
        "ldg_speedup": 1.6,
        "scaling_4w_speedup": 2.9,
    }


class TestSpeedupRegressions:
    def test_clean_when_within_floor(self):
        current = payload({}, hotpath={"loom_speedup": 1.4})
        baseline = payload({}, hotpath={"loom_speedup": 1.5})
        assert speedup_regressions(current, baseline, floor=0.9) == []

    def test_fails_below_floor(self):
        current = payload(
            {},
            hotpath={"loom_speedup": 1.0},
            scaling={"scaling_4w_speedup": 2.0},
        )
        baseline = payload(
            {},
            hotpath={"loom_speedup": 1.5},
            scaling={"scaling_4w_speedup": 2.1},
        )
        failures = speedup_regressions(current, baseline, floor=0.9)
        assert len(failures) == 1
        assert "loom_speedup" in failures[0]

    def test_new_headline_does_not_fail_first_run(self):
        current = payload({}, scaling={"scaling_4w_speedup": 2.0})
        baseline = payload({}, hotpath={"loom_speedup": 1.5})
        assert speedup_regressions(current, baseline) == []


def test_round_trip_and_schema_check(tmp_path):
    target = tmp_path / "bench.json"
    write_bench_json(target, payload({"E1": 0.25}))
    loaded = load_bench_json(target)
    assert loaded["experiments"]["E1"]["seconds"] == 0.25

    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "other/v0", "experiments": {}}')
    with pytest.raises(ValueError):
        load_bench_json(bad)
