"""The BENCH baseline diff (perf trajectory across PRs)."""

import pytest

from repro.bench.runner import SCHEMA, diff_bench, load_bench_json, write_bench_json


def payload(seconds_by_id, hotpath=None):
    out = {
        "schema": SCHEMA,
        "experiments": {
            eid: {"title": eid, "seconds": seconds, "tables": 1}
            for eid, seconds in seconds_by_id.items()
        },
    }
    if hotpath is not None:
        out["hotpath"] = hotpath
    return out


def test_diff_reports_delta_and_ratio():
    current = payload({"E1": 0.5}, hotpath={"loom_speedup": 1.5})
    baseline = payload({"E1": 1.0}, hotpath={"loom_speedup": 1.0})
    lines = diff_bench(current, baseline)
    assert any("E1" in line and "2.00x" in line and "-0.500s" in line
               for line in lines)
    assert any("loom_speedup: 1.5x vs 1.0x" in line for line in lines)


def test_diff_handles_missing_baseline_experiment():
    lines = diff_bench(payload({"E9": 0.1}), payload({}))
    assert lines == ["E9      0.100s (no baseline)"]


def test_round_trip_and_schema_check(tmp_path):
    target = tmp_path / "bench.json"
    write_bench_json(target, payload({"E1": 0.25}))
    loaded = load_bench_json(target)
    assert loaded["experiments"]["E1"]["seconds"] == 0.25

    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "other/v0", "experiments": {}}')
    with pytest.raises(ValueError):
        load_bench_json(bad)
