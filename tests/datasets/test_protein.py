"""Tests for the protein-interaction dataset."""

import random

import pytest

from repro.datasets import protein_network, protein_workload
from repro.graph.traversal import connected_components


class TestProteinNetwork:
    def test_labels_match_schema(self):
        g = protein_network(10, rng=random.Random(1))
        assert g.labels() <= {"rcpt", "kin", "phos", "scaf", "tf"}

    def test_pathways_planted(self):
        g = protein_network(12, n_complexes=0, background_proteins=0,
                            rng=random.Random(2))
        signalling = protein_workload().queries[0]
        assert len(signalling.answer(g)) >= 12

    def test_complexes_are_triangles(self):
        g = protein_network(2, n_complexes=8, background_proteins=0,
                            rng=random.Random(3))
        triangle = protein_workload().queries[2]
        assert len(triangle.answer(g)) >= 8

    def test_workload_queries_have_matches(self):
        g = protein_network(15, n_complexes=10, rng=random.Random(4))
        for query in protein_workload():
            assert query.answer(g), f"{query.name} found no matches"

    def test_single_component(self):
        g = protein_network(10, n_complexes=5, background_proteins=10,
                            rng=random.Random(5))
        components = connected_components(g)
        assert len(components[0]) > 0.8 * g.num_vertices

    def test_reproducible(self):
        a = protein_network(8, rng=random.Random(6))
        b = protein_network(8, rng=random.Random(6))
        assert a == b

    def test_no_pathways_rejected(self):
        with pytest.raises(ValueError):
            protein_network(0, rng=random.Random(0))
