"""Tests for the domain dataset generators and their workloads."""

import random

import pytest

from repro.datasets import (
    citation_network,
    citation_workload,
    fraud_network,
    fraud_workload,
    social_network,
    social_workload,
)
from repro.graph.traversal import connected_components


class TestSocial:
    def test_labels_match_schema(self):
        g = social_network(50, rng=random.Random(1))
        assert g.labels() <= {"user", "post", "comment", "page"}

    def test_user_count_exact(self):
        g = social_network(50, rng=random.Random(2))
        assert len(g.vertices_with_label("user")) == 50

    def test_posts_belong_to_users(self):
        g = social_network(40, rng=random.Random(3))
        for post in g.vertices_with_label("post"):
            owner_labels = {g.label(n) for n in g.neighbours(post)}
            assert "user" in owner_labels

    def test_comments_link_post_and_user(self):
        g = social_network(40, rng=random.Random(4))
        for comment in g.vertices_with_label("comment"):
            labels = sorted(g.label(n) for n in g.neighbours(comment))
            assert labels == ["post", "user"]

    def test_workload_queries_have_matches(self):
        g = social_network(80, rng=random.Random(5))
        for query in social_workload():
            assert query.answer(g), f"{query.name} found no matches"

    def test_reproducible(self):
        a = social_network(30, rng=random.Random(6))
        b = social_network(30, rng=random.Random(6))
        assert a == b

    def test_too_few_users_rejected(self):
        with pytest.raises(ValueError):
            social_network(1, rng=random.Random(0))


class TestFraud:
    def test_ring_members_share_device(self):
        g = fraud_network(60, n_rings=5, ring_size=4, rng=random.Random(7))
        # Accounts a0..a3 form ring 0 and share device d0.
        shared = set(g.neighbours("a0")) & set(g.neighbours("a1"))
        assert any(g.label(v) == "dev" for v in shared)
        assert any(g.label(v) == "card" for v in shared)

    def test_legit_accounts_have_private_devices(self):
        g = fraud_network(60, n_rings=2, ring_size=3, rng=random.Random(8))
        legit = "a59"  # far beyond the ring blocks
        devices = [v for v in g.neighbours(legit) if g.label(v) == "dev"]
        assert devices
        for device in devices:
            assert g.degree(device) == 1

    def test_workload_queries_have_matches(self):
        g = fraud_network(80, n_rings=6, rng=random.Random(9))
        for query in fraud_workload():
            assert query.answer(g), f"{query.name} found no matches"

    def test_shared_device_only_matches_rings(self):
        g = fraud_network(80, n_rings=4, ring_size=4, rng=random.Random(10))
        wedge = fraud_workload().queries[0]
        ring_accounts = {f"a{i}" for i in range(16)}
        for match in wedge.answer(g):
            accounts = {v for v in match.vertices() if g.label(v) == "acct"}
            assert accounts <= ring_accounts

    def test_too_many_rings_rejected(self):
        with pytest.raises(ValueError):
            fraud_network(10, n_rings=5, ring_size=4, rng=random.Random(0))


class TestCitation:
    def test_labels_match_schema(self):
        g = citation_network(60, rng=random.Random(11))
        assert g.labels() == {"paper", "author", "venue"}

    def test_every_paper_has_venue_and_author(self):
        g = citation_network(50, rng=random.Random(12))
        for paper in g.vertices_with_label("paper"):
            labels = {g.label(n) for n in g.neighbours(paper)}
            assert "venue" in labels
            assert "author" in labels

    def test_citation_chains_exist(self):
        g = citation_network(80, rng=random.Random(13))
        for query in citation_workload():
            assert query.answer(g), f"{query.name} found no matches"

    def test_mostly_connected(self):
        g = citation_network(80, rng=random.Random(14))
        components = connected_components(g)
        assert len(components[0]) > 0.8 * g.num_vertices

    def test_too_few_papers_rejected(self):
        with pytest.raises(ValueError):
            citation_network(1, rng=random.Random(0))
