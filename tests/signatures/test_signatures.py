"""Tests + property tests for the number-theoretic signature scheme.

The three load-bearing guarantees (see module docstring of
``repro.signatures.signature``):

1. isomorphism-invariance: isomorphic graphs get equal signatures,
2. sub-graph divisibility: ``S subgraph-of S'  =>  sig(S) | sig(S')``,
3. incremental == batch: extending a signature edge-by-edge reproduces the
   batch product.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SignatureError
from repro.graph import LabelledGraph, edge_subgraph, induced_subgraph
from repro.signatures import PrimeAssigner, SignatureScheme, primes
from repro.signatures.signature import EMPTY_SIGNATURE


class TestPrimes:
    def test_first_primes(self):
        gen = primes()
        assert [next(gen) for _ in range(8)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_assigner_is_stable(self):
        assigner = PrimeAssigner()
        first = assigner.factor("a")
        assert assigner.factor("a") == first

    def test_assigner_distinct_keys_distinct_primes(self):
        assigner = PrimeAssigner()
        values = {assigner.factor(k) for k in "abcdefgh"}
        assert len(values) == 8

    def test_stride_pools_disjoint(self):
        even = PrimeAssigner(stride=2, offset=0)
        odd = PrimeAssigner(stride=2, offset=1)
        even_primes = {even.factor(k) for k in range(20)}
        odd_primes = {odd.factor(k) for k in range(20)}
        assert not (even_primes & odd_primes)

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            PrimeAssigner(stride=0)
        with pytest.raises(ValueError):
            PrimeAssigner(stride=2, offset=5)

    def test_mapping_snapshot(self):
        assigner = PrimeAssigner()
        assigner.factor("x")
        snapshot = assigner.mapping()
        assert snapshot == {"x": 2}
        assert len(assigner) == 1


class TestSchemeBasics:
    def test_empty_graph_signature_is_identity(self):
        scheme = SignatureScheme()
        assert scheme.signature_of(LabelledGraph()) == EMPTY_SIGNATURE

    def test_single_vertex(self):
        scheme = SignatureScheme()
        g = LabelledGraph.from_edges({0: "a"})
        assert scheme.signature_of(g) == scheme.vertex_factor("a")

    def test_vertex_and_edge_factors_disjoint(self):
        scheme = SignatureScheme()
        va = scheme.vertex_factor("a")
        vb = scheme.vertex_factor("b")
        edge = scheme.edge_factor("a", "b")
        pair_prime = edge // (va * vb)
        assert pair_prime not in (va, vb)
        assert pair_prime > 1

    def test_edge_factor_symmetric(self):
        scheme = SignatureScheme()
        assert scheme.edge_factor("a", "b") == scheme.edge_factor("b", "a")

    def test_register_alphabet_order_independent(self):
        s1 = SignatureScheme()
        s1.register_alphabet(["b", "a", "c"])
        s2 = SignatureScheme()
        s2.register_alphabet(["c", "b", "a"])
        g = LabelledGraph.path("abc")
        assert s1.signature_of(g) == s2.signature_of(g)

    def test_without_edge_factors_smaller(self):
        lean = SignatureScheme(include_edge_factors=False)
        rich = SignatureScheme(include_edge_factors=True)
        g = LabelledGraph.path("ab")
        assert lean.signature_of(g) < rich.signature_of(g)


class TestDivisibility:
    def test_path_divides_longer_path(self):
        scheme = SignatureScheme()
        short = LabelledGraph.path("ab")
        long = LabelledGraph.path("abc")
        assert scheme.divides(scheme.signature_of(short), scheme.signature_of(long))

    def test_non_subgraph_does_not_divide(self):
        scheme = SignatureScheme()
        square = LabelledGraph.cycle("abab")
        path = LabelledGraph.path("abc")
        assert not scheme.divides(
            scheme.signature_of(square), scheme.signature_of(path)
        )

    def test_quotient(self):
        scheme = SignatureScheme()
        g = LabelledGraph.path("abc")
        sub = edge_subgraph(g, [(0, 1)])
        quotient = scheme.quotient(scheme.signature_of(g), scheme.signature_of(sub))
        assert quotient is not None
        assert quotient > 1

    def test_quotient_none_when_not_divisible(self):
        scheme = SignatureScheme()
        a = scheme.signature_of(LabelledGraph.from_edges({0: "a"}))
        b = scheme.signature_of(LabelledGraph.from_edges({0: "b"}))
        assert scheme.quotient(a, b) is None

    def test_zero_signature_rejected(self):
        with pytest.raises(SignatureError):
            SignatureScheme.divides(0, 10)
        with pytest.raises(SignatureError):
            SignatureScheme.quotient(10, 0)


class TestIncremental:
    def test_extend_with_vertex(self):
        scheme = SignatureScheme()
        sig = scheme.extend_with_vertex(EMPTY_SIGNATURE, "a")
        assert sig == scheme.vertex_factor("a")

    def test_extend_with_edge_existing_endpoints(self):
        scheme = SignatureScheme()
        g = LabelledGraph.from_edges({0: "a", 1: "b"}, [(0, 1)])
        incremental = scheme.extend_with_vertex(EMPTY_SIGNATURE, "a")
        incremental = scheme.extend_with_vertex(incremental, "b")
        incremental = scheme.extend_with_edge(incremental, "a", "b")
        assert incremental == scheme.signature_of(g)

    def test_extend_with_edge_new_endpoint(self):
        scheme = SignatureScheme()
        g = LabelledGraph.path("ab")
        incremental = scheme.extend_with_vertex(EMPTY_SIGNATURE, "a")
        incremental = scheme.extend_with_edge(
            incremental, "a", "b", new_endpoint="b"
        )
        assert incremental == scheme.signature_of(g)

    def test_bad_new_endpoint_raises(self):
        scheme = SignatureScheme()
        with pytest.raises(SignatureError):
            scheme.extend_with_edge(1, "a", "b", new_endpoint="z")


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------
@st.composite
def labelled_graphs(draw, max_vertices: int = 7):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    labels = draw(st.lists(st.sampled_from("abcd"), min_size=n, max_size=n))
    graph = LabelledGraph()
    for v, label in enumerate(labels):
        graph.add_vertex(v, label)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        edges = draw(st.lists(st.sampled_from(possible), max_size=10))
        for u, v in edges:
            graph.add_edge(u, v)
    return graph


class TestSignatureProperties:
    @settings(max_examples=80, deadline=None)
    @given(labelled_graphs(), st.integers(min_value=0, max_value=2**16))
    def test_isomorphic_copies_equal_signature(self, graph, seed):
        rng = random.Random(seed)
        vertices = list(graph.vertices())
        shuffled = vertices[:]
        rng.shuffle(shuffled)
        mapping = {old: shuffled.index(old) + 500 for old in vertices}
        clone = LabelledGraph()
        for v in vertices:
            clone.add_vertex(mapping[v], graph.label(v))
        for u, v in graph.edges():
            clone.add_edge(mapping[u], mapping[v])
        scheme = SignatureScheme()
        scheme.register_alphabet("abcd")
        assert scheme.signature_of(graph) == scheme.signature_of(clone)

    @settings(max_examples=80, deadline=None)
    @given(labelled_graphs(), st.integers(min_value=0, max_value=2**16))
    def test_induced_subgraph_divides(self, graph, seed):
        rng = random.Random(seed)
        vertices = list(graph.vertices())
        keep = [v for v in vertices if rng.random() < 0.6]
        sub = induced_subgraph(graph, keep)
        scheme = SignatureScheme()
        scheme.register_alphabet("abcd")
        assert scheme.divides(
            scheme.signature_of(sub), scheme.signature_of(graph)
        )

    @settings(max_examples=60, deadline=None)
    @given(labelled_graphs())
    def test_incremental_rebuild_matches_batch(self, graph):
        scheme = SignatureScheme()
        scheme.register_alphabet("abcd")
        sig = EMPTY_SIGNATURE
        for vertex in graph.vertices():
            sig = scheme.extend_with_vertex(sig, graph.label(vertex))
        for u, v in graph.edges():
            sig = scheme.extend_with_edge(sig, graph.label(u), graph.label(v))
        assert sig == scheme.signature_of(graph)
