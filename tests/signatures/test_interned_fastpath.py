"""The interned fast path must agree exactly with the generic scheme API."""

import random

from repro.graph.labelled import LabelledGraph
from repro.signatures.signature import SignatureScheme


def test_label_ids_are_dense_and_stable():
    scheme = SignatureScheme()
    ids = [scheme.label_id(label) for label in "cab"]
    assert ids == [0, 1, 2]
    assert [scheme.label_id(label) for label in "cab"] == ids


def test_vertex_factor_by_id_matches_label_lookup():
    scheme = SignatureScheme()
    for label in "abcd":
        lid = scheme.label_id(label)
        assert scheme.vertex_factor_by_id(lid) == scheme.vertex_factor(label)


def test_edge_step_equals_edge_factor_and_is_symmetric():
    scheme = SignatureScheme()
    a, b = scheme.label_id("a"), scheme.label_id("b")
    assert scheme.edge_step(a, b) == scheme.edge_factor("a", "b")
    assert scheme.edge_step(a, b) == scheme.edge_step(b, a)


def test_edge_step_with_vertex_is_the_extend_product():
    scheme = SignatureScheme()
    a, b = scheme.label_id("a"), scheme.label_id("b")
    assert scheme.edge_step_with_vertex(a, b, b) == (
        scheme.edge_factor("a", "b") * scheme.vertex_factor("b")
    )


def test_pair_signature_matches_generic_construction():
    scheme = SignatureScheme()
    a, b = scheme.label_id("a"), scheme.label_id("b")
    generic = scheme.extend_with_edge(
        scheme.vertex_factor("a"), "a", "b", new_endpoint="b"
    )
    assert scheme.pair_signature(a, b) == generic


def test_interned_incremental_signature_equals_batch(seed=7):
    """Random graphs: step-by-step interned products == signature_of."""
    rng = random.Random(seed)
    scheme = SignatureScheme()
    scheme.register_alphabet("abcd")
    for _ in range(30):
        n = rng.randint(2, 7)
        graph = LabelledGraph()
        for v in range(n):
            graph.add_vertex(v, rng.choice("abcd"))
        for v in range(1, n):
            graph.add_edge(v, rng.randrange(v))
        signature = 1
        for v in graph.vertices():
            signature *= scheme.vertex_factor_by_id(
                scheme.label_id(graph.label(v))
            )
        for u, v in graph.edges():
            signature *= scheme.edge_step(
                scheme.label_id(graph.label(u)),
                scheme.label_id(graph.label(v)),
            )
        assert signature == scheme.signature_of(graph)


def test_without_edge_factors_step_is_endpoint_product():
    scheme = SignatureScheme(include_edge_factors=False)
    a, b = scheme.label_id("a"), scheme.label_id("b")
    assert scheme.edge_step(a, b) == (
        scheme.vertex_factor("a") * scheme.vertex_factor("b")
    )
