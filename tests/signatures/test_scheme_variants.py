"""Second-wave signature tests: the degree-only variant and scheme isolation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import LabelledGraph, induced_subgraph
from repro.signatures import SignatureScheme


@st.composite
def labelled_graphs(draw, max_vertices: int = 6):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    labels = draw(st.lists(st.sampled_from("abc"), min_size=n, max_size=n))
    graph = LabelledGraph()
    for v, label in enumerate(labels):
        graph.add_vertex(v, label)
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    if possible:
        for u, v in draw(st.lists(st.sampled_from(possible), max_size=8)):
            graph.add_edge(u, v)
    return graph


class TestDegreeOnlyVariant:
    @settings(max_examples=60, deadline=None)
    @given(labelled_graphs(), st.integers(min_value=0, max_value=2**16))
    def test_divisibility_holds_without_edge_factors(self, graph, seed):
        rng = random.Random(seed)
        scheme = SignatureScheme(include_edge_factors=False)
        scheme.register_alphabet("abc")
        keep = [v for v in graph.vertices() if rng.random() < 0.5]
        sub = induced_subgraph(graph, keep)
        assert scheme.divides(
            scheme.signature_of(sub), scheme.signature_of(graph)
        )

    def test_edge_factors_strengthen_discrimination(self):
        # Path a-a-b and star centre a with leaves a, b: same per-label
        # degree profile would collide without... actually they differ;
        # use the two graphs from E7's collision family instead.
        g1 = LabelledGraph.from_edges(
            {0: "b", 1: "c", 2: "d", 3: "d"},
            [(0, 2), (1, 0), (2, 1), (2, 3)],
        )
        g2 = LabelledGraph.from_edges(
            {0: "b", 1: "c", 2: "d", 3: "d"},
            [(0, 1), (2, 0), (2, 1), (2, 3)],
        )
        lean = SignatureScheme(include_edge_factors=False)
        lean.register_alphabet("bcd")
        rich = SignatureScheme(include_edge_factors=True)
        rich.register_alphabet("bcd")
        # These two have identical label multisets; whether each scheme
        # separates them depends on degree/edge-pair profiles.  At minimum
        # the rich scheme must separate whenever the lean one does.
        if lean.signature_of(g1) != lean.signature_of(g2):
            assert rich.signature_of(g1) != rich.signature_of(g2)


class TestSchemeIsolation:
    def test_two_schemes_assign_independently(self):
        a = SignatureScheme()
        b = SignatureScheme()
        # Different registration orders give different factor assignments.
        a.register_alphabet(["x", "y"])
        b.register_alphabet(["y", "x"])
        # Each scheme is self-consistent even though cross-scheme values
        # may differ.
        g = LabelledGraph.path("xy")
        assert a.signature_of(g) == a.signature_of(g)
        assert b.signature_of(g) == b.signature_of(g)

    def test_isomorphic_equal_within_any_single_scheme(self):
        scheme = SignatureScheme()
        g1 = LabelledGraph.path("xy")
        g2 = LabelledGraph.path("yx")
        assert scheme.signature_of(g1) == scheme.signature_of(g2)

    def test_signatures_grow_with_graph(self):
        scheme = SignatureScheme()
        scheme.register_alphabet("ab")
        small = scheme.signature_of(LabelledGraph.path("ab"))
        large = scheme.signature_of(LabelledGraph.path("abab"))
        assert large > small
