"""Tests for pattern queries, workloads and the paper's figure-1 example."""

import random

import pytest

from repro.exceptions import WorkloadError
from repro.graph import LabelledGraph, is_connected
from repro.workload import (
    PatternQuery,
    Workload,
    cycle_workload,
    figure1_graph,
    figure1_workload,
    mixed_workload,
    path_workload,
    tree_workload,
    workload_from_graph,
    zipf_frequencies,
)


class TestPatternQuery:
    def test_valid_query(self):
        q = PatternQuery("q", LabelledGraph.path("ab"), 2.0)
        assert q.size == 2

    def test_empty_pattern_rejected(self):
        with pytest.raises(WorkloadError):
            PatternQuery("q", LabelledGraph())

    def test_disconnected_pattern_rejected(self):
        graph = LabelledGraph.from_edges({0: "a", 1: "b"})
        with pytest.raises(WorkloadError):
            PatternQuery("q", graph)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(WorkloadError):
            PatternQuery("q", LabelledGraph.path("ab"), 0.0)

    def test_answer_uses_exact_matching(self):
        q = PatternQuery("q2", LabelledGraph.path("abc"))
        answers = q.answer(figure1_graph())
        assert {frozenset(a.vertices()) for a in answers} == {
            frozenset({1, 2, 3}),
            frozenset({6, 2, 3}),
        }

    def test_str_mentions_size_and_frequency(self):
        q = PatternQuery("q", LabelledGraph.path("ab"), 0.5)
        assert "q(" in str(q) and "f=0.5" in str(q)


class TestWorkload:
    def make(self):
        return Workload(
            [
                PatternQuery("hot", LabelledGraph.path("ab"), 8.0),
                PatternQuery("cold", LabelledGraph.path("cd"), 2.0),
            ]
        )

    def test_probabilities_normalised(self):
        w = self.make()
        assert w.probabilities() == {"hot": 0.8, "cold": 0.2}
        assert sum(w.probabilities().values()) == pytest.approx(1.0)

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            Workload([])

    def test_duplicate_names_rejected(self):
        q = PatternQuery("dup", LabelledGraph.path("ab"))
        with pytest.raises(WorkloadError):
            Workload([q, PatternQuery("dup", LabelledGraph.path("cd"))])

    def test_sampling_respects_frequencies(self):
        w = self.make()
        rng = random.Random(9)
        draws = w.sample_many(4000, rng)
        hot_share = sum(1 for q in draws if q.name == "hot") / len(draws)
        assert 0.75 < hot_share < 0.85

    def test_alphabet_union(self):
        assert self.make().alphabet() == {"a", "b", "c", "d"}

    def test_max_query_size(self):
        assert self.make().max_query_size() == 2

    def test_len_and_iter(self):
        w = self.make()
        assert len(w) == 2
        assert [q.name for q in w] == ["hot", "cold"]


class TestZipf:
    def test_uniform_at_zero_skew(self):
        assert zipf_frequencies(4, 0.0) == [1.0, 1.0, 1.0, 1.0]

    def test_decreasing_with_skew(self):
        freqs = zipf_frequencies(5, 1.0)
        assert freqs == sorted(freqs, reverse=True)
        assert freqs[0] == 1.0

    def test_invalid_args(self):
        with pytest.raises(WorkloadError):
            zipf_frequencies(0)
        with pytest.raises(WorkloadError):
            zipf_frequencies(3, -1.0)


class TestGenerators:
    def test_path_workload_shapes(self):
        w = path_workload("abc", count=5, rng=random.Random(1))
        assert len(w) == 5
        for q in w:
            assert q.graph.num_edges == q.graph.num_vertices - 1
            assert max(q.graph.degree(v) for v in q.graph.vertices()) <= 2

    def test_tree_workload_connected(self):
        w = tree_workload("abc", count=4, rng=random.Random(2))
        for q in w:
            assert is_connected(q.graph)
            assert q.graph.num_edges == q.graph.num_vertices - 1

    def test_cycle_workload_degrees(self):
        w = cycle_workload("abc", count=3, rng=random.Random(3))
        for q in w:
            assert all(q.graph.degree(v) == 2 for v in q.graph.vertices())

    def test_mixed_workload_counts(self):
        w = mixed_workload("abc", paths=2, trees=2, cycles=1, rng=random.Random(4))
        assert len(w) == 5

    def test_generators_reproducible(self):
        a = path_workload("abcd", count=4, rng=random.Random(5))
        b = path_workload("abcd", count=4, rng=random.Random(5))
        assert [q.graph.vertex_labels() for q in a] == [
            q.graph.vertex_labels() for q in b
        ]

    def test_empty_alphabet_rejected(self):
        with pytest.raises(WorkloadError):
            path_workload("", count=2, rng=random.Random(0))


class TestWorkloadFromGraph:
    def test_sampled_queries_have_matches(self):
        g = figure1_graph()
        w = workload_from_graph(g, count=4, min_size=2, max_size=3, rng=random.Random(6))
        for q in w:
            assert q.answer(g), f"{q.name} should match its source graph"

    def test_sampled_queries_connected(self):
        g = figure1_graph()
        w = workload_from_graph(g, count=4, rng=random.Random(7))
        for q in w:
            assert is_connected(q.graph)

    def test_edgeless_graph_rejected(self):
        g = LabelledGraph.from_edges({0: "a", 1: "b"})
        with pytest.raises(WorkloadError):
            workload_from_graph(g, count=1, rng=random.Random(0))


class TestPaperExample:
    def test_graph_shape(self):
        g = figure1_graph()
        assert g.num_vertices == 8
        assert g.num_edges == 9
        assert g.label_histogram() == {"a": 2, "b": 2, "c": 2, "d": 2}

    def test_workload_queries(self):
        w = figure1_workload()
        names = [q.name for q in w]
        assert names == ["q1", "q2", "q3"]

    def test_q1_answer_matches_paper(self):
        w = figure1_workload()
        q1 = w.queries[0]
        answers = q1.answer(figure1_graph())
        assert len(answers) == 1
        assert set(answers[0].vertices()) == {1, 2, 5, 6}

    def test_frequency_overrides(self):
        w = figure1_workload(q1_frequency=8.0, q2_frequency=1.0, q3_frequency=1.0)
        assert w.probability(w.queries[0]) == pytest.approx(0.8)
