"""Explicit retraction: window paths, matcher kill paths, and the
expire × retraction interaction (no double-eviction, counters exact)."""

import pytest

from repro.core import LoomConfig, LoomPartitioner
from repro.exceptions import StreamError
from repro.graph import LabelledGraph
from repro.stream.events import (
    EdgeArrival,
    EdgeRemoval,
    VertexArrival,
    VertexRemoval,
)
from repro.stream.window import SlidingWindow
from repro.workload import PatternQuery, Workload


class TestWindowRetraction:
    def make_window(self):
        window = SlidingWindow(4)
        window.add_vertex(1, "a")
        window.add_vertex(2, "b")
        return window

    def test_internal_edge_retraction(self):
        window = self.make_window()
        window.add_edge(1, 2)
        assert window.retract_edge(1, 2) == "internal"
        assert not window.graph.has_edge(1, 2)
        # Tolerant re-retraction: the edge is simply gone.
        assert window.retract_edge(1, 2) == "internal"

    def test_external_edge_retraction(self):
        window = self.make_window()
        window.add_edge(1, 99)  # 99 already departed/placed
        assert window.external_neighbours(1) == frozenset({99})
        assert window.retract_edge(1, 99) == "external"
        assert window.external_neighbours(1) == frozenset()

    def test_departed_edge_retraction_is_noop(self):
        window = self.make_window()
        assert window.retract_edge(50, 60) == "departed"

    def test_vertex_retraction_does_not_externalise(self):
        """A deleted buffered vertex must NOT become an external (placed)
        neighbour of its buffered neighbours -- it no longer exists."""
        window = self.make_window()
        window.add_edge(1, 2)
        window.retract_vertex(1)
        assert 1 not in window
        assert window.external_neighbours(2) == frozenset()
        assert not window.graph.has_vertex(1)

    def test_expire_does_externalise_for_contrast(self):
        window = self.make_window()
        window.add_edge(1, 2)
        window.expire(1)
        assert window.external_neighbours(2) == frozenset({1})

    def test_retract_unbuffered_vertex_raises(self):
        window = self.make_window()
        with pytest.raises(StreamError):
            window.retract_vertex(99)

    def test_forget_placed_purges_external_sets(self):
        window = self.make_window()
        window.add_edge(1, 99)
        window.add_edge(2, 99)
        assert sorted(window.forget_placed(99)) == [1, 2]
        assert window.external_neighbours(1) == frozenset()
        assert window.external_neighbours(2) == frozenset()
        assert window.forget_placed(99) == []


def make_loom(window_size=16):
    abc = LabelledGraph.path("abc")
    workload = Workload([PatternQuery("abc", abc)])
    config = LoomConfig(
        k=2, capacity=16, window_size=window_size, motif_threshold=0.5
    )
    return LoomPartitioner(workload, config)


def feed(loom, *events):
    loom.process_batch(events)


class TestMatcherRetraction:
    def test_retracting_matched_edge_kills_partial_matches(self):
        """The acceptance-criterion assertion: deleting a matched edge
        provably kills the partial matches containing it."""
        loom = make_loom()
        feed(
            loom,
            VertexArrival(1, "a", 0),
            VertexArrival(2, "b", 1),
            EdgeArrival(1, 2, 2),
        )
        matcher = loom.matcher
        before = len(matcher.matches())
        assert before >= 1  # the a-b pair is a TPSTry++ node
        feed(loom, EdgeRemoval(1, 2, 3))
        assert matcher.matches() == []
        assert matcher.stats["retracted"] == before
        assert matcher.stats["evicted"] == 0

    def test_retraction_then_expiry_no_double_count(self):
        """A match killed by retraction must not be re-counted when its
        vertices later expire out of the window (and vice versa)."""
        loom = make_loom()
        feed(
            loom,
            VertexArrival(1, "a", 0),
            VertexArrival(2, "b", 1),
            EdgeArrival(1, 2, 2),
            VertexArrival(3, "c", 3),
            EdgeArrival(2, 3, 4),
        )
        matcher = loom.matcher
        registered = matcher.stats["trusted"] + matcher.stats["verified"]
        assert registered >= 3  # ab, bc, abc at least
        feed(loom, EdgeRemoval(1, 2, 5))
        retracted = matcher.stats["retracted"]
        assert retracted >= 2  # ab and abc contained the edge
        loom.flush()
        # Whatever survived retraction was evicted exactly once; the
        # ledger balances with no overlap between the two counters.
        assert (
            matcher.stats["evicted"] + matcher.stats["retracted"]
            == registered
        )
        assert matcher.stats["retracted"] == retracted
        assert matcher.matches() == []

    def test_expiry_then_retraction_is_noop(self):
        """Deleting an edge whose endpoints already left the window must
        not disturb the eviction ledger (the 'departed' route)."""
        loom = make_loom(window_size=2)
        feed(
            loom,
            VertexArrival(1, "a", 0),
            VertexArrival(2, "b", 1),
            EdgeArrival(1, 2, 2),
        )
        loom.flush()  # both endpoints assigned; their matches evicted
        evicted = loom.matcher.stats["evicted"]
        assert evicted >= 1
        feed(loom, EdgeRemoval(1, 2, 3))
        assert loom.matcher.stats["retracted"] == 0
        assert loom.matcher.stats["evicted"] == evicted

    def test_vertex_retraction_kills_matches_and_frees_no_slot(self):
        loom = make_loom()
        feed(
            loom,
            VertexArrival(1, "a", 0),
            VertexArrival(2, "b", 1),
            EdgeArrival(1, 2, 2),
            VertexRemoval(2, 3),
        )
        matcher = loom.matcher
        assert matcher.matches() == []
        assert matcher.stats["retracted"] >= 1
        assert loom.assignment.num_assigned == 0
        loom.flush()  # vertex 1 places alone; 2 is gone for good
        assert loom.assignment.num_assigned == 1
        assert loom.assignment.partition_of(2) is None

    def test_removing_placed_vertex_frees_capacity(self):
        loom = make_loom(window_size=2)
        feed(
            loom,
            VertexArrival(1, "a", 0),
            VertexArrival(2, "b", 1),
            VertexArrival(3, "a", 2),  # forces 1 out of the window
        )
        assert loom.assignment.num_assigned == 1
        sizes_before = sum(loom.assignment.sizes())
        feed(loom, VertexRemoval(1, 3))
        assert sum(loom.assignment.sizes()) == sizes_before - 1
        assert loom.assignment.partition_of(1) is None

    def test_edge_readdition_after_retraction_rematches(self):
        loom = make_loom()
        feed(
            loom,
            VertexArrival(1, "a", 0),
            VertexArrival(2, "b", 1),
            EdgeArrival(1, 2, 2),
            EdgeRemoval(1, 2, 3),
            EdgeArrival(1, 2, 4),
        )
        assert len(loom.matcher.matches()) >= 1
        assert loom.matcher.stats["retracted"] >= 1


class TestNeighbourIndexUnderChurn:
    def test_adapter_unwinds_cascaded_edge_of_pending_vertex(self):
        """Deleting a placed neighbour of the pending vertex cascades over
        their shared edge: the neighbour-index count must unwind, or LDG
        scores a ghost (code-review regression)."""
        from repro.engine.pipeline import VertexStreamAdapter
        from repro.partitioning.streaming import LinearDeterministicGreedy

        adapter = VertexStreamAdapter(
            LinearDeterministicGreedy(), k=3, capacity=4
        )
        adapter.process(VertexArrival(1, "a", 0))
        adapter.process(VertexArrival(2, "a", 1))  # places 1
        adapter.process(EdgeArrival(2, 1, 2))      # noted for pending 2
        adapter.process(VertexRemoval(1, 3))       # cascade kills the edge
        counts = adapter.assignment.cached_neighbour_counts(2)
        assert counts is None or counts == [0, 0, 0]
        adapter.flush()
        # With no surviving neighbours 2 lands on the least-loaded
        # partition (0 -- everything is empty), not 1's old home.
        assert adapter.assignment.partition_of(2) == 0

    def test_loom_assignment_index_equivalent_under_churn(self):
        """assignment_index=True must never change assignments, including
        when a buffered vertex dies and its id returns under a new label
        (code-review regression: stale pending counts on a recycled id)."""
        script = (
            VertexArrival(0, "a", 0),
            VertexArrival(1, "b", 1),
            VertexArrival(2, "a", 2),
            VertexArrival(3, "b", 3),
            VertexArrival(4, "c", 4),
            EdgeArrival(4, 0, 5),       # external once 0 departs
            VertexRemoval(4, 6),        # dies while buffered
            VertexArrival(4, "b", 7),   # same id, new label, new life
            EdgeArrival(4, 3, 8),
            VertexArrival(5, "a", 9),
            EdgeArrival(5, 4, 10),
        )
        abc = LabelledGraph.path("abc")
        workload = Workload([PatternQuery("abc", abc)])
        assignments = []
        for indexed in (True, False):
            config = LoomConfig(
                k=3, capacity=4, window_size=3, motif_threshold=0.5
            )
            loom = LoomPartitioner(
                workload, config, assignment_index=indexed
            )
            loom.process_batch(script)
            loom.flush()
            assignments.append(loom.assignment.assigned())
        assert assignments[0] == assignments[1]
