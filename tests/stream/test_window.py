"""Tests for the sliding stream window."""

import pytest

from repro.exceptions import StreamError
from repro.stream import SlidingWindow


def filled_window(capacity=4):
    window = SlidingWindow(capacity)
    for v, label in enumerate("abcd"[:capacity]):
        window.add_vertex(v, label)
    return window


class TestArrival:
    def test_capacity_must_be_positive(self):
        with pytest.raises(StreamError):
            SlidingWindow(0)

    def test_add_vertex_buffers(self):
        window = SlidingWindow(2)
        window.add_vertex(1, "a")
        assert 1 in window
        assert len(window) == 1

    def test_full_window_rejects_vertices(self):
        window = filled_window(2)
        with pytest.raises(StreamError):
            window.add_vertex(99, "z")

    def test_duplicate_vertex_rejected(self):
        window = SlidingWindow(3)
        window.add_vertex(1, "a")
        with pytest.raises(StreamError):
            window.add_vertex(1, "a")

    def test_internal_edge(self):
        window = filled_window()
        assert window.add_edge(0, 1) == "internal"
        assert window.graph.has_edge(0, 1)

    def test_external_edge(self):
        window = filled_window(2)
        departed = window.evict_oldest()
        assert window.add_edge(departed.vertex, 1) == "external"
        assert departed.vertex in window.external_neighbours(1)

    def test_departed_edge(self):
        window = filled_window(2)
        a = window.evict_oldest()
        b = window.evict_oldest()
        assert window.add_edge(a.vertex, b.vertex) == "departed"


class TestDeparture:
    def test_oldest_is_fifo(self):
        window = filled_window()
        assert window.oldest() == 0

    def test_evict_oldest_returns_context(self):
        window = filled_window()
        window.add_edge(0, 1)
        departed = window.evict_oldest()
        assert departed.vertex == 0
        assert departed.label == "a"
        assert departed.external_neighbours == frozenset()

    def test_departing_vertex_becomes_external_for_neighbours(self):
        window = filled_window()
        window.add_edge(0, 1)
        window.evict_oldest()
        assert 0 in window.external_neighbours(1)

    def test_external_neighbours_accumulate(self):
        window = filled_window()
        window.add_edge(0, 3)
        window.add_edge(1, 3)
        window.evict_oldest()  # 0
        window.evict_oldest()  # 1
        assert window.external_neighbours(3) == frozenset({0, 1})

    def test_remove_arbitrary_vertex(self):
        window = filled_window()
        window.add_edge(1, 2)
        departed = window.remove(2)
        assert departed.vertex == 2
        assert 2 not in window
        assert 2 in window.external_neighbours(1)

    def test_remove_missing_raises(self):
        window = filled_window()
        with pytest.raises(StreamError):
            window.remove(99)

    def test_oldest_on_empty_raises(self):
        window = SlidingWindow(2)
        with pytest.raises(StreamError):
            window.oldest()

    def test_drain_empties_fifo(self):
        window = filled_window(3)
        order = [wv.vertex for wv in window.drain()]
        assert order == [0, 1, 2]
        assert len(window) == 0

    def test_eviction_frees_capacity(self):
        window = filled_window(2)
        window.evict_oldest()
        window.add_vertex(50, "z")
        assert 50 in window

    def test_departed_external_context_preserved(self):
        # 0 leaves; later 1 leaves and must report 0 as external neighbour
        # even though the edge arrived while both were buffered.
        window = filled_window(2)
        window.add_edge(0, 1)
        window.evict_oldest()
        departed = window.evict_oldest()
        assert departed.external_neighbours == frozenset({0})

    def test_arrival_order_snapshot(self):
        window = filled_window(3)
        assert window.arrival_order() == [0, 1, 2]
