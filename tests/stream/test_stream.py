"""Tests for stream events, orderings and sources."""

import random

import pytest

from repro.exceptions import StreamError
from repro.graph import LabelledGraph
from repro.graph.generators import erdos_renyi
from repro.stream import (
    EdgeArrival,
    VertexArrival,
    adversarial_order,
    growth_stream,
    ordered_vertices,
    stream_from_graph,
)
from repro.stream.sources import replay, stream_edges, stream_vertices


def sample_graph() -> LabelledGraph:
    return erdos_renyi(30, 0.15, rng=random.Random(42))


class TestOrderings:
    @pytest.mark.parametrize(
        "name", ["natural", "random", "bfs", "dfs", "adversarial"]
    )
    def test_every_ordering_is_a_permutation(self, name):
        g = sample_graph()
        order = ordered_vertices(g, name, random.Random(1))
        assert sorted(order) == sorted(g.vertices())

    def test_unknown_ordering_raises(self):
        with pytest.raises(StreamError):
            ordered_vertices(sample_graph(), "bogus")

    def test_adversarial_prefix_is_independent_set(self):
        g = sample_graph()
        order = adversarial_order(g, random.Random(2))
        # The first extracted independent set has no internal edges; find
        # its size by scanning until the first vertex adjacent to the prefix.
        prefix: set = set()
        for vertex in order:
            if g.neighbours(vertex) & prefix:
                break
            prefix.add(vertex)
        assert len(prefix) >= 2
        for u in prefix:
            assert not (g.neighbours(u) & prefix)

    def test_natural_matches_insertion(self):
        g = LabelledGraph.from_edges({3: "a", 1: "b", 2: "c"})
        assert ordered_vertices(g, "natural") == [3, 1, 2]


class TestStreamFromGraph:
    def test_replay_reconstructs_graph(self):
        g = sample_graph()
        events = stream_from_graph(g, ordering="random", rng=random.Random(3))
        assert replay(events) == g

    def test_edges_arrive_after_both_endpoints(self):
        g = sample_graph()
        events = stream_from_graph(g, ordering="bfs", rng=random.Random(4))
        arrived: set = set()
        for event in events:
            if isinstance(event, VertexArrival):
                arrived.add(event.vertex)
            else:
                assert event.u in arrived and event.v in arrived

    def test_event_times_strictly_increase(self):
        events = stream_from_graph(sample_graph(), ordering="random", rng=random.Random(5))
        times = [e.time for e in events]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_event_counts(self):
        g = sample_graph()
        events = stream_from_graph(g, ordering="random", rng=random.Random(6))
        vertex_events = [e for e in events if isinstance(e, VertexArrival)]
        edge_events = list(stream_edges(events))
        assert len(vertex_events) == g.num_vertices
        assert len(edge_events) == g.num_edges

    def test_bad_explicit_order_rejected(self):
        g = LabelledGraph.path("ab")
        with pytest.raises(StreamError):
            stream_vertices(g, [0])  # missing vertex 1

    def test_event_str_forms(self):
        assert "+v" in str(VertexArrival(1, "a", 0))
        assert "+e" in str(EdgeArrival(1, 2, 1))


class TestGrowthStream:
    def test_replay_is_valid_graph(self):
        events = growth_stream(50, 2, rng=random.Random(7))
        g = replay(events)
        assert g.num_vertices == 50
        assert g.num_edges == 3 + 47 * 2

    def test_edges_respect_arrival(self):
        events = growth_stream(30, 1, rng=random.Random(8))
        arrived: set = set()
        for event in events:
            if isinstance(event, VertexArrival):
                arrived.add(event.vertex)
            else:
                assert event.u in arrived and event.v in arrived

    def test_bad_parameters(self):
        with pytest.raises(StreamError):
            growth_stream(2, 3, rng=random.Random(0))
        with pytest.raises(StreamError):
            growth_stream(10, 0, rng=random.Random(0))
