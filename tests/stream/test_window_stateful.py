"""Stateful property test for the sliding window.

Hypothesis drives random sequences of arrivals, edges, evictions and
out-of-order removals against a model, asserting the window's invariants
after every step:

* the buffer never exceeds capacity;
* the buffered sub-graph contains exactly the buffered vertices;
* external neighbour sets reference only departed vertices;
* FIFO order is preserved for ``oldest``.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.stream import SlidingWindow

CAPACITY = 5


class WindowMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.window = SlidingWindow(CAPACITY)
        self.next_id = 0
        self.buffered: list[int] = []     # model: arrival order
        self.departed: set[int] = set()

    # ------------------------------------------------------------------
    @precondition(lambda self: len(self.buffered) < CAPACITY)
    @rule(label=st.sampled_from("ab"))
    def arrive(self, label):
        vertex = self.next_id
        self.next_id += 1
        self.window.add_vertex(vertex, label)
        self.buffered.append(vertex)

    @precondition(lambda self: len(self.buffered) >= 2)
    @rule(data=st.data())
    def internal_edge(self, data):
        u = data.draw(st.sampled_from(self.buffered))
        v = data.draw(st.sampled_from([x for x in self.buffered if x != u]))
        if not self.window.graph.has_edge(u, v):
            assert self.window.add_edge(u, v) == "internal"

    @precondition(lambda self: self.buffered and self.departed)
    @rule(data=st.data())
    def external_edge(self, data):
        u = data.draw(st.sampled_from(self.buffered))
        v = data.draw(st.sampled_from(sorted(self.departed)))
        assert self.window.add_edge(u, v) == "external"
        assert v in self.window.external_neighbours(u)

    @precondition(lambda self: self.buffered)
    @rule()
    def evict_oldest(self):
        expected = self.buffered[0]
        departed = self.window.evict_oldest()
        assert departed.vertex == expected
        self.buffered.pop(0)
        self.departed.add(expected)

    @precondition(lambda self: self.buffered)
    @rule(data=st.data())
    def remove_any(self, data):
        vertex = data.draw(st.sampled_from(self.buffered))
        departed = self.window.remove(vertex)
        assert departed.vertex == vertex
        self.buffered.remove(vertex)
        self.departed.add(vertex)

    # ------------------------------------------------------------------
    @invariant()
    def capacity_respected(self):
        assert len(self.window) <= CAPACITY

    @invariant()
    def buffer_matches_model(self):
        assert self.window.arrival_order() == self.buffered
        assert set(self.window.graph.vertices()) == set(self.buffered)

    @invariant()
    def externals_are_departed(self):
        for vertex in self.buffered:
            externals = self.window.external_neighbours(vertex)
            assert externals <= self.departed

    @invariant()
    def oldest_is_head(self):
        if self.buffered:
            assert self.window.oldest() == self.buffered[0]


TestWindowStateful = WindowMachine.TestCase
TestWindowStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
