"""Two-sided doc drift tests: the manuals mirror the code, exactly.

Each test compares a documented table against the authoritative code
surface *as sets in both directions*: a field/verb/metric added to the
code without a doc row fails, and a doc row surviving a code removal
fails the same way.  The metric catalogue is held to the strongest
standard -- the table in ``docs/observability.md`` must match the
generated one (``python -m repro.obs.catalog``) line for line.
"""

import dataclasses
import re
from pathlib import Path

import pytest

from repro.api.config import ClusterConfig, DurabilityConfig, WorkerConfig
from repro.obs import catalog_table, metric_names
from repro.serve.config import ServeConfig, TenantConfig
from repro.serve.protocol import VERBS

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"

CODE_SPAN = re.compile(r"`([^`]+)`")
FIELD_NAME = re.compile(r"^[a-z_][a-z0-9_]*$")


def read(name: str) -> str:
    return (DOCS / name).read_text()


def rows_after_heading(text: str, heading: str) -> list[str]:
    """Data rows of the first pipe table after a ``#`` heading."""
    lines = text.splitlines()
    start = lines.index(heading)
    rows, started = [], False
    for line in lines[start + 1:]:
        if line.startswith("|"):
            started = True
            rows.append(line)
        elif started:
            break
    if len(rows) < 3:
        raise AssertionError(f"no table found after {heading!r}")
    return rows[2:]  # drop header + separator


def rows_at_header(text: str, header: str) -> list[str]:
    """Data rows of the pipe table whose header row is ``header``."""
    lines = text.splitlines()
    start = lines.index(header)
    rows = []
    for line in lines[start + 2:]:  # skip header + separator
        if not line.startswith("|"):
            break
        rows.append(line)
    if not rows:
        raise AssertionError(f"empty table at {header!r}")
    return rows


def first_cell_names(rows: list[str]) -> set[str]:
    """Every code-span identifier in each row's first cell.

    Handles combined rows like ``| `local_cost` / `remote_cost` | ...``.
    """
    names: set[str] = set()
    for row in rows:
        first = row.strip("|").split("|")[0]
        for span in CODE_SPAN.findall(first):
            if FIELD_NAME.match(span):
                names.add(span)
    return names


def field_names(cls) -> set[str]:
    return {field.name for field in dataclasses.fields(cls)}


class TestConfigTables:
    @pytest.mark.parametrize(
        ("page", "heading", "cls"),
        [
            ("api-reference.md", "## `ClusterConfig`", ClusterConfig),
            ("api-reference.md", "### `WorkerConfig`", WorkerConfig),
            ("api-reference.md", "### `DurabilityConfig`", DurabilityConfig),
            ("api-reference.md", "### `ServeConfig`", ServeConfig),
            ("api-reference.md", "### `TenantConfig`", TenantConfig),
        ],
    )
    def test_documented_fields_match_dataclass(self, page, heading, cls):
        documented = first_cell_names(rows_after_heading(read(page), heading))
        actual = field_names(cls)
        assert documented == actual, (
            f"{page} section {heading!r} vs {cls.__name__}: "
            f"out of sync on {sorted(documented ^ actual)}"
        )

    def test_serving_page_tenant_table(self):
        rows = rows_at_header(
            read("serving.md"), "| `TenantConfig` field | default | meaning |"
        )
        assert first_cell_names(rows) == field_names(TenantConfig)


class TestServeVerbs:
    def test_verb_table_matches_registry(self):
        rows = rows_at_header(
            read("serving.md"), "| verb | payload | result |"
        )
        documented = {
            CODE_SPAN.findall(row.strip("|").split("|")[0])[0]
            for row in rows
        }
        assert documented == set(VERBS), (
            f"serving.md verb table out of sync on "
            f"{sorted(documented ^ set(VERBS))}"
        )

    def test_every_verb_has_a_description(self):
        for verb, description in VERBS.items():
            assert description, verb


class TestMetricCatalogue:
    HEADER = "| metric | kind | labels | meaning |"

    def test_observability_table_matches_generated(self):
        documented = rows_at_header(read("observability.md"), self.HEADER)
        generated = [
            line
            for line in catalog_table().splitlines()
            if line.startswith("|")
        ][2:]  # drop the generated header + separator too
        assert documented == generated, (
            "docs/observability.md catalogue drifted from "
            "`python -m repro.obs.catalog` -- regenerate and paste"
        )

    def test_catalogue_names_are_exactly_the_registry(self):
        documented = {
            CODE_SPAN.findall(row.strip("|").split("|")[0])[0]
            for row in rows_at_header(read("observability.md"), self.HEADER)
        }
        assert documented == set(metric_names())


class TestReadmeClaims:
    def test_checker_count_matches_registry(self):
        from repro.analysis.base import CHECKS

        count_words = {5: "five", 6: "six", 7: "seven", 8: "eight"}
        expected = count_words[len(CHECKS)]
        readme = (REPO / "README.md").read_text()
        assert f"runs {expected}" in readme, (
            "README checker count drifted from the analysis registry"
        )
        assert f"runs {expected} repo-specific AST checkers" in read(
            "static-analysis.md"
        )

    def test_docs_index_lists_every_page(self):
        index = read("README.md")
        for page in sorted(DOCS.glob("*.md")):
            if page.name == "README.md":
                continue
            assert f"({page.name})" in index, (
                f"docs/README.md index is missing {page.name}"
            )
