"""Markdown link checker: every relative link target must exist.

Pure stdlib, runs in the CI docs job.  External links (http/https,
mailto) are out of scope -- flaky networks must not fail CI -- but a
broken relative link is always a bug: either the target moved or the
page never existed.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

#: Pages the checker sweeps: the README tier plus everything in docs/.
PAGES = sorted(
    [
        REPO / "README.md",
        REPO / "ROADMAP.md",
        REPO / "CHANGES.md",
        *(REPO / "docs").glob("*.md"),
    ]
)

#: ``[text](target)`` -- good enough for this repo's plain markdown
#: (no images with titles, no reference-style links).
LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:")


def relative_links(path: Path) -> list[str]:
    text = path.read_text()
    # Fenced code blocks may hold JSON arrays that look like links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return [
        target
        for target in LINK.findall(text)
        if not target.startswith(SKIP_SCHEMES) and not target.startswith("#")
    ]


@pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
def test_relative_links_resolve(page):
    broken = []
    for target in relative_links(page):
        resolved = (page.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, f"{page.name}: broken relative links {broken}"


def test_the_sweep_actually_sees_links():
    # Guard the checker against silently checking nothing.
    assert any(relative_links(page) for page in PAGES)
