"""Shared fixtures for the serving-layer tests.

Every test server binds ``port=0`` (an ephemeral port) so suites can
run in parallel, and every server started through the factory is
stopped -- draining its tenants and closing their sessions -- even when
the test body raises.
"""

import pytest

from repro.api import ClusterConfig
from repro.serve import BackgroundServer, ServeConfig, TenantConfig


@pytest.fixture()
def make_tenant():
    def factory(name="alpha", **kwargs):
        kwargs.setdefault(
            "cluster", ClusterConfig(partitions=3, method="ldg", seed=5)
        )
        return TenantConfig(name=name, **kwargs)

    return factory


@pytest.fixture()
def serve_factory():
    servers = []

    def factory(*tenants, **server_kwargs):
        server_kwargs.setdefault("port", 0)
        config = ServeConfig(tenants=tuple(tenants), **server_kwargs)
        server = BackgroundServer(config).start()
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()
