"""The tentpole acceptance test: a workload run through the TCP client
is byte-identical to the same commands against an in-process Session.

Two differentials:

* **Scripted pairwise** -- one client and one local session execute the
  same op script (ingest incl. the churned dataset, query, workload,
  retract, rebalance, stats, snapshot); every response compares equal
  to the local report's ``as_dict()`` after stripping wall-clock
  timing fields (canonical sorted-key JSON, so 'equal' means equal
  bytes on the wire).
* **Concurrent replay** -- two client threads run mixed
  ingest/query/retract concurrently (plus a third connection that
  disconnects mid-run without reading its reply).  The tenant host's
  ``command_journal`` records the serialised execution order; replaying
  that journal through a fresh in-process session via the *same*
  handler code must reproduce every recorded response and the final
  snapshot byte for byte.
"""

import json
import socket
import threading
import time

from repro.api import Cluster, ClusterConfig
from repro.api.session import _builtin_datasets
from repro.graph.labelled import LabelledGraph
from repro.serve import ClusterHost, ServeClient, TenantConfig
from repro.serve.protocol import (
    encode_frame,
    events_to_wire,
    pattern_to_wire,
)
from repro.stream.events import EdgeArrival, VertexArrival
from repro.workload.query import PatternQuery

CONFIG = ClusterConfig(partitions=4, method="ldg", seed=11)

#: Wall-clock fields; everything else must match byte for byte.
TIMING = {
    "seconds",
    "engine_seconds",
    "events_per_second",
    "stage_seconds",
    "shard_import_seconds",
    "workers",
    "import_seconds",
    "cpu_seconds",
}


def _strip(obj):
    if isinstance(obj, dict):
        return {k: _strip(v) for k, v in obj.items() if k not in TIMING}
    if isinstance(obj, (list, tuple)):
        return [_strip(v) for v in obj]
    return obj


def canonical(payload) -> str:
    return json.dumps(_strip(payload), sort_keys=True)


def _social_workload():
    return _builtin_datasets()["social"][1]()


def _chain(vertices, label="a"):
    events = [VertexArrival(v, label, t) for t, v in enumerate(vertices)]
    events.extend(
        EdgeArrival(u, v, len(vertices) + t)
        for t, (u, v) in enumerate(zip(vertices, vertices[1:]))
    )
    return events


def _pattern(name, label="a"):
    graph = LabelledGraph()
    graph.add_vertex(0, label)
    graph.add_vertex(1, label)
    graph.add_edge(0, 1)
    return PatternQuery(name, graph)


class TestScriptedDifferential:
    def test_tcp_equals_in_process(self, serve_factory, make_tenant):
        server = serve_factory(
            make_tenant(
                "diff", cluster=CONFIG, workload_dataset="social"
            )
        )
        local = Cluster.open(CONFIG, workload=_social_workload())
        client = ServeClient(port=server.port, tenant="diff")
        try:
            remote = client.ingest("social", size=60, seed=2)
            assert canonical(remote) == canonical(
                local.ingest("social", size=60, seed=2).as_dict()
            )

            pattern = _social_workload().queries[0]
            remote = client.query(pattern, track_edges=True)
            assert canonical(remote) == canonical(
                local.query(pattern, track_edges=True).as_dict()
            )

            remote = client.run_workload(executions=25, seed=3)
            assert canonical(remote) == canonical(
                local.run_workload(executions=25, seed=3).as_dict()
            )

            victims = sorted(local.graph.vertices())[:2]
            edge = sorted(local.graph.edges())[-1]
            remote = client.retract(vertices=victims, edges=(edge,))
            assert canonical(remote) == canonical(
                local.retract(vertices=victims, edges=(edge,)).as_dict()
            )

            remote = client.rebalance(max_moves=5)
            assert canonical(remote) == canonical(
                local.rebalance(max_moves=5).as_dict()
            )

            # The churned dataset: a mixed insert/delete event stream.
            remote = client.ingest("churn", size=40, seed=4)
            local_report = local.ingest("churn", size=40, seed=4)
            assert remote["removals"] > 0
            assert canonical(remote) == canonical(local_report.as_dict())

            assert canonical(client.stats()) == canonical(
                local.stats().as_dict()
            )
            # No timing fields in a snapshot: exact equality.
            assert client.snapshot() == local.snapshot()
        finally:
            client.close()
            local.close()


class TestConcurrentReplayDifferential:
    def _run_thread(self, port, script, recorded, errors):
        client = ServeClient(port=port, tenant="diff")
        try:
            for verb, payload in script:
                recorded.append((verb, payload, client.call(verb, payload)))
        except Exception as error:  # noqa: BLE001 - reraised by the test
            errors.append(error)
        finally:
            client.close()

    def test_interleaved_clients_equal_serialised_replay(
        self, serve_factory, make_tenant
    ):
        tenant = make_tenant(
            "diff", cluster=CONFIG, workload_dataset="social"
        )
        server = serve_factory(tenant)
        host = server.server.hosts["diff"]
        journal: list = []
        host.command_journal = journal

        seed_client = ServeClient(port=server.port, tenant="diff")
        recorded: list = []
        errors: list = []
        try:
            recorded.append(
                (
                    "ingest",
                    {"dataset": "social", "size": 50, "seed": 2},
                    seed_client.call(
                        "ingest",
                        {"dataset": "social", "size": 50, "seed": 2},
                    ),
                )
            )
            scripts = [
                [
                    (
                        "ingest",
                        {"events": events_to_wire(_chain(range(1000, 1012)))},
                    ),
                    ("query", {"pattern": pattern_to_wire(_pattern("qa"))}),
                    ("retract", {"vertices": [1000, 1001], "edges": []}),
                ],
                [
                    (
                        "ingest",
                        {"events": events_to_wire(_chain(range(2000, 2012)))},
                    ),
                    ("workload", {"executions": 10, "seed": 7}),
                    ("retract", {"vertices": [2005], "edges": []}),
                ],
            ]
            threads = [
                threading.Thread(
                    target=self._run_thread,
                    args=(server.port, script, recorded, errors),
                )
                for script in scripts
            ]
            for thread in threads:
                thread.start()

            # A third connection fires one mutating command and hangs up
            # without reading the reply: the command must still execute
            # exactly once.
            rude_payload = {"events": events_to_wire(_chain(range(3000, 3006)))}
            rude = socket.create_connection(("127.0.0.1", server.port))
            rude.sendall(
                encode_frame(
                    {
                        "id": 99,
                        "verb": "ingest",
                        "tenant": "diff",
                        "payload": rude_payload,
                    }
                )
            )
            rude.close()

            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if ("ingest", rude_payload) in journal:
                    break
                time.sleep(0.02)
            assert journal.count(("ingest", rude_payload)) == 1

            recorded.append(("stats", {}, seed_client.call("stats", {})))
            recorded.append(
                ("snapshot", {}, seed_client.call("snapshot", {}))
            )
        finally:
            seed_client.close()
        server.stop()  # joins the host thread: the journal is final

        assert len(journal) == len(recorded) + 1  # + the rude ingest
        responses = {
            canonical({"verb": verb, "payload": payload}): result
            for verb, payload, result in recorded
        }
        assert len(responses) == len(recorded), "ops must be distinct"

        replay = Cluster.open(CONFIG, workload=_social_workload())
        fake = ClusterHost(tenant)
        fake.session = replay
        try:
            for verb, payload in journal:
                outcome = fake._execute(verb, payload)
                assert outcome[0] == "ok", outcome
                key = canonical({"verb": verb, "payload": payload})
                if key in responses:
                    assert canonical(outcome[1]) == canonical(
                        responses.pop(key)
                    )
            assert not responses, "journal missed recorded commands"
        finally:
            replay.close()
