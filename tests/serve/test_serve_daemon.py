"""Daemon behaviour over a live socket, plus the ClusterHost quota
machinery (admission control, backpressure, queued-deadline expiry,
shutdown) tested deterministically below the network layer."""

import asyncio
import socket
import threading

import pytest

from repro.api import ClusterConfig
from repro.graph.labelled import LabelledGraph
from repro.serve import ClusterHost, ServeClient
from repro.serve.client import (
    BadRequestError,
    RemoteSessionError,
    TenantBusyError,
    UnknownTenantError,
    UnknownVerbError,
)
from repro.serve.protocol import (
    HEADER,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_body,
    encode_frame,
)
from repro.stream.events import EdgeArrival, VertexArrival
from repro.workload.query import PatternQuery

SMALL = ClusterConfig(partitions=2, method="ldg", seed=3)


def _events(vertices):
    events = [VertexArrival(v, "a", t) for t, v in enumerate(vertices)]
    events.extend(
        EdgeArrival(u, v, len(vertices) + t)
        for t, (u, v) in enumerate(zip(vertices, vertices[1:]))
    )
    return events


def _pattern():
    graph = LabelledGraph()
    graph.add_vertex(0, "a")
    graph.add_vertex(1, "a")
    graph.add_edge(0, 1)
    return PatternQuery("pair", graph)


class TestWireBehaviour:
    def test_server_ping_names_the_roster(self, serve_factory, make_tenant):
        server = serve_factory(make_tenant("alpha"), make_tenant("beta"))
        with ServeClient(port=server.port) as client:
            assert client.ping() == {
                "protocol": PROTOCOL_VERSION,
                "tenants": ["alpha", "beta"],
            }

    def test_tenant_ping(self, serve_factory, make_tenant):
        server = serve_factory(make_tenant("alpha"))
        with ServeClient(port=server.port, tenant="alpha") as client:
            pong = client.ping()
        assert pong["tenant"] == "alpha"
        assert pong["protocol"] == PROTOCOL_VERSION

    def test_unknown_tenant(self, serve_factory, make_tenant):
        server = serve_factory(make_tenant("alpha"))
        with ServeClient(port=server.port, tenant="ghost") as client:
            with pytest.raises(UnknownTenantError, match="alpha"):
                client.stats()

    def test_unknown_verb(self, serve_factory, make_tenant):
        server = serve_factory(make_tenant("alpha"))
        with ServeClient(port=server.port, tenant="alpha") as client:
            with pytest.raises(UnknownVerbError):
                client.call("frobnicate")

    def test_non_positive_deadline_is_bad_request(
        self, serve_factory, make_tenant
    ):
        server = serve_factory(make_tenant("alpha"))
        with ServeClient(port=server.port, tenant="alpha") as client:
            with pytest.raises(BadRequestError, match="deadline"):
                client.call("ping", deadline=-1.0)

    def test_ingest_query_stats_round_trip(
        self, serve_factory, make_tenant
    ):
        server = serve_factory(make_tenant("alpha", cluster=SMALL))
        with ServeClient(port=server.port, tenant="alpha") as client:
            report = client.ingest(_events(range(10)))
            assert report["vertices"] == 10
            assert report["edges"] == 9
            result = client.query(_pattern())
            assert result["matches"] > 0
            stats = client.stats()
            assert stats["vertices"] == 10
            snapshot = client.snapshot()
            assert snapshot["schema"] == "loom-repro/session/v1"

    def test_session_errors_are_typed(self, serve_factory, make_tenant):
        server = serve_factory(make_tenant("alpha", cluster=SMALL))
        with ServeClient(port=server.port, tenant="alpha") as client:
            client.ingest(_events(range(4)))
            with pytest.raises(RemoteSessionError, match="not resident"):
                client.retract(vertices=(999,))

    def test_ambiguous_ingest_is_bad_request(
        self, serve_factory, make_tenant
    ):
        server = serve_factory(make_tenant("alpha", cluster=SMALL))
        with ServeClient(port=server.port, tenant="alpha") as client:
            with pytest.raises(BadRequestError, match="exactly one"):
                client.call(
                    "ingest", {"dataset": "social", "events": []}
                )

    def test_oversize_frame_answered_then_dropped(
        self, serve_factory, make_tenant
    ):
        """A peer announcing a body over the server's ceiling gets one
        best-effort bad-request reply, then the connection dies (an
        out-of-frame stream cannot be resynchronised)."""
        server = serve_factory(
            make_tenant("alpha"), max_frame_bytes=2048
        )
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(HEADER.pack(1 << 22))
            header = sock.recv(HEADER.size)
            (length,) = HEADER.unpack(header)
            body = decode_body(sock.recv(length))
            assert body["ok"] is False
            assert body["error"]["kind"] == "bad-request"
            assert sock.recv(1) == b""  # server hung up

    def test_mid_run_disconnect_leaves_server_healthy(
        self, serve_factory, make_tenant
    ):
        server = serve_factory(make_tenant("alpha", cluster=SMALL))
        rude = socket.create_connection(("127.0.0.1", server.port))
        rude.sendall(
            encode_frame(
                {"id": 1, "verb": "ping", "tenant": "alpha", "payload": {}}
            )
        )
        rude.close()  # never reads the response
        with ServeClient(port=server.port, tenant="alpha") as client:
            assert client.ping()["tenant"] == "alpha"

    def test_client_reconnects_after_connection_drop(
        self, serve_factory, make_tenant
    ):
        server = serve_factory(make_tenant("alpha"), max_frame_bytes=2048)
        client = ServeClient(port=server.port, tenant="alpha")
        try:
            with pytest.raises(BadRequestError):
                # Over the server's ceiling, under the client's own.
                client.call("ping", {"pad": "x" * 4096})
            # The server dropped that connection; the client notices the
            # dead socket on the next call and reconnects cleanly after.
            try:
                pong = client.ping()
            except (ProtocolError, OSError):
                pong = client.ping()
            assert pong["tenant"] == "alpha"
        finally:
            client.close()


class TestHostQuotas:
    """ClusterHost below the socket layer: deterministic via an
    instance-level blocking handler (submit() does not consult VERBS,
    so the fake verb never needs a registry entry)."""

    @pytest.fixture()
    def host(self, make_tenant):
        hosts = []

        def factory(**kwargs):
            kwargs.setdefault("cluster", SMALL)
            host = ClusterHost(make_tenant("alpha", **kwargs))
            host.start()
            hosts.append(host)
            return host

        yield factory
        for host in hosts:
            host.stop()

    @staticmethod
    def _block(host):
        started = threading.Event()
        release = threading.Event()

        def sleepy(payload):
            started.set()
            release.wait(10.0)
            return {"slept": True}

        host._verb_sleepy = sleepy
        return started, release

    def test_admission_control(self, host):
        one = host(max_inflight=1)
        started, release = self._block(one)

        async def scenario():
            loop = asyncio.get_running_loop()
            slow = one.submit("sleepy", {}, 30.0, loop)
            assert not isinstance(slow, tuple)
            assert await asyncio.to_thread(started.wait, 5.0)
            rejected = one.submit("ping", {}, 30.0, loop)
            release.set()
            return rejected, await asyncio.wait_for(slow, 10.0)

        rejected, outcome = asyncio.run(scenario())
        assert rejected[:2] == ("error", "busy")
        assert "max_inflight=1" in rejected[2]
        assert outcome == ("ok", {"slept": True})

    def test_backpressure_rejects_when_queue_full(self, host):
        one = host(max_inflight=8, max_pending=1)
        started, release = self._block(one)

        async def scenario():
            loop = asyncio.get_running_loop()
            slow = one.submit("sleepy", {}, 30.0, loop)
            assert await asyncio.to_thread(started.wait, 5.0)
            queued = one.submit("ping", {}, 30.0, loop)
            assert not isinstance(queued, tuple)
            rejected = one.submit("ping", {}, 30.0, loop)
            release.set()
            await asyncio.wait_for(slow, 10.0)
            await asyncio.wait_for(queued, 10.0)
            return rejected

        rejected = asyncio.run(scenario())
        assert rejected[:2] == ("error", "busy")
        assert "max_pending=1" in rejected[2]

    def test_queued_command_past_deadline_never_touches_the_session(
        self, host
    ):
        one = host()
        started, release = self._block(one)
        journal = []
        one.command_journal = journal

        async def scenario():
            loop = asyncio.get_running_loop()
            slow = one.submit("sleepy", {}, 30.0, loop)
            fast = one.submit("ping", {}, 0.05, loop)
            assert await asyncio.to_thread(started.wait, 5.0)
            await asyncio.sleep(0.2)
            release.set()
            return (
                await asyncio.wait_for(slow, 10.0),
                await asyncio.wait_for(fast, 10.0),
            )

        slow, fast = asyncio.run(scenario())
        assert slow == ("ok", {"slept": True})
        assert fast[:2] == ("error", "deadline")
        # The expired command was answered without executing.
        assert [verb for verb, _ in journal] == ["sleepy"]

    def test_stopped_host_answers_shutdown(self, host):
        one = host()
        one.stop()

        async def scenario():
            return one.submit("ping", {}, 30.0, asyncio.get_running_loop())

        outcome = asyncio.run(scenario())
        assert outcome[:2] == ("error", "shutdown")
