"""The ``loom-repro serve`` / ``loom-repro connect`` CLI pair.

``connect`` is exercised against an in-process background server; the
full daemon lifecycle (spawn as a subprocess, resolve the ephemeral
port from its banner, drive it over TCP, SIGTERM it down gracefully)
runs the same code path an operator does.
"""

import argparse
import json
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import EXIT_USAGE, _serve_config, main
from repro.serve import ServeConfig, TenantConfig


def _serve_args(**overrides):
    defaults = dict(
        config=None,
        host=None,
        port=None,
        tenant="default",
        method="ldg",
        k=4,
        workers=1,
        seed=0,
        wal_dir=None,
        workload_dataset=None,
        max_inflight=8,
        max_pending=64,
        deadline=60.0,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


class TestServeConfigFlags:
    def test_single_tenant_flags(self, tmp_path):
        config = _serve_config(
            _serve_args(
                tenant="demo",
                k=3,
                seed=9,
                wal_dir=str(tmp_path / "wal"),
                workload_dataset="social",
                port=0,
            )
        )
        (tenant,) = config.tenants
        assert tenant.name == "demo"
        assert tenant.cluster.partitions == 3
        assert tenant.cluster.seed == 9
        assert tenant.cluster.durability.enabled
        assert tenant.cluster.durability.wal_dir == str(tmp_path / "wal")
        assert tenant.workload_dataset == "social"
        assert config.port == 0

    def test_config_file(self, tmp_path):
        deployment = ServeConfig(
            port=0, tenants=(TenantConfig(name="alpha"),)
        )
        path = tmp_path / "deploy.json"
        path.write_text(json.dumps(deployment.as_dict()), encoding="utf-8")
        config = _serve_config(_serve_args(config=str(path)))
        assert config == deployment

    def test_config_file_with_endpoint_overrides(self, tmp_path):
        deployment = ServeConfig(tenants=(TenantConfig(name="alpha"),))
        path = tmp_path / "deploy.json"
        path.write_text(json.dumps(deployment.as_dict()), encoding="utf-8")
        config = _serve_config(
            _serve_args(config=str(path), host="0.0.0.0", port=0)
        )
        assert config.host == "0.0.0.0"
        assert config.port == 0
        assert config.tenants == deployment.tenants

    def test_config_excludes_single_tenant_flags(self, tmp_path):
        from repro.exceptions import ConfigurationError

        path = tmp_path / "deploy.json"
        path.write_text(json.dumps(ServeConfig().as_dict()))
        with pytest.raises(ConfigurationError, match="exclusive"):
            _serve_config(_serve_args(config=str(path), tenant="demo"))

    def test_missing_config_file_fails_usage(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["serve", "--config", missing]) == EXIT_USAGE
        assert "cannot read config" in capsys.readouterr().err


class TestConnect:
    def test_payload_must_be_json_object(self, capsys):
        assert (
            main(["connect", "stats", "--payload", "[1"]) == EXIT_USAGE
        )
        assert "not valid JSON" in capsys.readouterr().err
        assert (
            main(["connect", "stats", "--payload", "[1, 2]"]) == EXIT_USAGE
        )
        assert "JSON object" in capsys.readouterr().err

    def test_unreachable_daemon_fails_usage(self, capsys):
        assert (
            main(["connect", "ping", "--port", "1"]) == EXIT_USAGE
        )
        assert "cannot reach" in capsys.readouterr().err

    def test_round_trip_against_background_server(
        self, serve_factory, make_tenant, capsys
    ):
        server = serve_factory(make_tenant("demo"))
        port = str(server.port)
        assert main(["connect", "ping", "--port", port]) == 0
        assert json.loads(capsys.readouterr().out)["tenants"] == ["demo"]

        assert main(
            [
                "connect",
                "ingest",
                "--port",
                port,
                "--tenant",
                "demo",
                "--payload",
                '{"dataset": "social", "size": 30, "seed": 1}',
            ]
        ) == 0
        ingested = json.loads(capsys.readouterr().out)["vertices"]
        assert ingested > 0

        assert main(
            ["connect", "stats", "--port", port, "--tenant", "demo"]
        ) == 0
        assert json.loads(capsys.readouterr().out)["vertices"] == ingested

    def test_remote_errors_map_to_usage_exit(
        self, serve_factory, make_tenant, capsys
    ):
        server = serve_factory(make_tenant("demo"))
        assert main(
            [
                "connect",
                "stats",
                "--port",
                str(server.port),
                "--tenant",
                "ghost",
            ]
        ) == EXIT_USAGE
        assert "unknown-tenant" in capsys.readouterr().err


class TestServeDaemonLifecycle:
    def test_serve_banner_connect_sigterm(self, capsys):
        """Spawn the real daemon, read its banner for the ephemeral
        port, drive it via ``connect``, and SIGTERM it down."""
        src = Path(__file__).resolve().parents[2] / "src"
        script = (
            "from repro.cli import main; "
            "raise SystemExit(main(["
            "'serve', '--port', '0', '--tenant', 'demo', '-k', '2'"
            "]))"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        )
        try:
            assert proc.stdout is not None
            banner = proc.stdout.readline().strip()
            assert banner.startswith("serving tenants [demo] on ")
            port = banner.rsplit(":", 1)[1]
            assert main(
                ["connect", "ping", "--port", port, "--tenant", "demo"]
            ) == 0
            assert json.loads(capsys.readouterr().out)["tenant"] == "demo"
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            proc.kill()
        assert proc.returncode == 0, err
        assert "shutdown complete" in out
