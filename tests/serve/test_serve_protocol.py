"""Unit tests for the wire protocol: framing, envelopes, codecs, and
the runtime mirror of the PROT005/PROT006 verb-registry contract."""

import asyncio
import json

import pytest

from repro.graph.labelled import LabelledGraph
from repro.runtime.mailbox import QueryPayload
from repro.serve import ClusterHost
from repro.serve.protocol import (
    ERROR_KINDS,
    HEADER,
    VERBS,
    FrameTooLargeError,
    ProtocolError,
    decode_body,
    edges_from_wire,
    encode_frame,
    error_response,
    events_from_wire,
    events_to_wire,
    ok_response,
    pattern_from_wire,
    pattern_to_wire,
    read_frame,
)
from repro.stream.events import (
    EdgeArrival,
    EdgeRemoval,
    VertexArrival,
    VertexRemoval,
)
from repro.workload.query import PatternQuery


def _read_one(data: bytes, **kwargs):
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader, **kwargs)

    return asyncio.run(scenario())


class TestFraming:
    def test_round_trip(self):
        body = {"verb": "ping", "id": 3, "payload": {"z": 1, "a": 2}}
        frame = encode_frame(body)
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_body(frame[HEADER.size:]) == body

    def test_canonical_bytes(self):
        """Equal bodies are byte-equal frames whatever dict order
        produced them -- the differential tests rely on this."""
        one = encode_frame({"a": 1, "b": [2, 3]})
        other = encode_frame({"b": [2, 3], "a": 1})
        assert one == other
        assert b" " not in one[HEADER.size:]

    def test_oversize_body_rejected_at_encode(self):
        with pytest.raises(FrameTooLargeError):
            encode_frame({"blob": "x" * 64}, max_frame_bytes=32)

    def test_body_must_be_json_object(self):
        with pytest.raises(ProtocolError):
            decode_body(b"\xff\xfe")
        with pytest.raises(ProtocolError):
            decode_body(b"[1, 2]")

    def test_read_frame_round_trip(self):
        assert _read_one(encode_frame({"id": 1})) == {"id": 1}

    def test_read_frame_clean_eof_is_none(self):
        assert _read_one(b"") is None

    def test_read_frame_mid_header_eof(self):
        with pytest.raises(ProtocolError):
            _read_one(b"\x00\x00")

    def test_read_frame_mid_body_eof(self):
        frame = encode_frame({"id": 1})
        with pytest.raises(ProtocolError):
            _read_one(frame[:-1])

    def test_read_frame_oversize_announcement(self):
        with pytest.raises(FrameTooLargeError):
            _read_one(HEADER.pack(1 << 24), max_frame_bytes=1 << 20)


class TestEnvelopes:
    def test_ok(self):
        assert ok_response(7, {"x": 1}) == {
            "id": 7,
            "ok": True,
            "result": {"x": 1},
        }

    def test_error_kinds_are_closed(self):
        body = error_response(7, "busy", "try later")
        assert body == {
            "id": 7,
            "ok": False,
            "error": {"kind": "busy", "message": "try later"},
        }
        with pytest.raises(ValueError):
            error_response(7, "made-up", "nope")
        for kind in ERROR_KINDS:
            assert error_response(None, kind, "m")["error"]["kind"] == kind


class TestEventCodec:
    EVENTS = [
        VertexArrival(1, "a", 0),
        VertexArrival(2, "b", 1),
        EdgeArrival(1, 2, 2),
        EdgeRemoval(1, 2, 3),
        VertexRemoval(2, 4),
    ]

    def test_round_trip(self):
        wire = events_to_wire(self.EVENTS)
        assert events_from_wire(wire) == self.EVENTS

    def test_wire_form_is_json_plain(self):
        wire = events_to_wire(self.EVENTS)
        assert events_from_wire(json.loads(json.dumps(wire))) == self.EVENTS

    def test_unknown_event_rejected(self):
        with pytest.raises(ProtocolError):
            events_to_wire([object()])

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            events_from_wire([["??", 1, 2]])

    def test_malformed_arity_rejected(self):
        with pytest.raises(ProtocolError):
            events_from_wire([["v+", 1]])
        with pytest.raises(ProtocolError):
            events_from_wire([17])


class TestPatternCodec:
    def _pattern(self):
        graph = LabelledGraph()
        graph.add_vertex(0, "a")
        graph.add_vertex(1, "b")
        graph.add_vertex(2, "a")
        graph.add_edge(0, 1)
        graph.add_edge(1, 2)
        return PatternQuery("wedge", graph)

    def test_round_trip_preserves_search_order(self):
        pattern = self._pattern()
        wire = json.loads(json.dumps(pattern_to_wire(pattern)))
        rebuilt = pattern_from_wire(wire)
        assert QueryPayload.from_query(rebuilt) == QueryPayload.from_query(
            pattern
        )

    def test_malformed_pattern_rejected(self):
        with pytest.raises(ProtocolError):
            pattern_from_wire({"name": "x"})
        with pytest.raises(ProtocolError):
            pattern_from_wire({"name": "x", "vertices": [[1]], "edges": []})


class TestEdgeCodec:
    def test_round_trip(self):
        assert edges_from_wire([[1, 2], [3, 4]]) == [(1, 2), (3, 4)]

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            edges_from_wire([[1, 2, 3]])
        with pytest.raises(ProtocolError):
            edges_from_wire(7)


class TestVerbRegistry:
    """Runtime mirror of the PROT005/PROT006 static checks."""

    def test_every_declared_verb_has_a_handler(self):
        for verb in VERBS:
            assert callable(getattr(ClusterHost, f"_verb_{verb}", None)), (
                f"VERBS declares {verb!r} but ClusterHost has no handler"
            )

    def test_every_handler_is_declared(self):
        handlers = {
            name[len("_verb_"):]
            for name in vars(ClusterHost)
            if name.startswith("_verb_")
        }
        assert handlers == set(VERBS)
