"""Validation and round-trip tests for the serving configuration."""

import json

import pytest

from repro.api import ClusterConfig
from repro.exceptions import ConfigurationError
from repro.serve import ServeConfig, TenantConfig
from repro.serve.protocol import MAX_FRAME_BYTES


class TestTenantConfig:
    def test_defaults(self):
        tenant = TenantConfig(name="alpha")
        assert tenant.cluster == ClusterConfig()
        assert tenant.max_inflight == 8
        assert tenant.max_pending == 64
        assert tenant.default_deadline == 60.0
        assert tenant.workload_dataset is None

    def test_cluster_coerced_from_dict(self):
        tenant = TenantConfig(
            name="alpha", cluster={"partitions": 8, "method": "fennel"}
        )
        assert tenant.cluster == ClusterConfig(partitions=8, method="fennel")

    def test_dict_round_trip(self):
        tenant = TenantConfig(
            name="alpha",
            cluster=ClusterConfig(partitions=2),
            max_inflight=3,
            workload_dataset="social",
        )
        assert TenantConfig.from_dict(tenant.as_dict()) == tenant

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": ""},
            {"name": "a", "cluster": 7},
            {"name": "a", "max_inflight": 0},
            {"name": "a", "max_pending": 0},
            {"name": "a", "default_deadline": 0.0},
            {"name": "a", "workload_dataset": "enron"},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TenantConfig(**kwargs)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            TenantConfig.from_dict({"name": "a", "max_infligt": 2})


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert config.host == "127.0.0.1"
        assert config.port == 7466
        assert config.tenants == ()
        assert config.max_frame_bytes == MAX_FRAME_BYTES

    def test_tenants_coerced_from_dicts(self):
        config = ServeConfig(tenants=({"name": "a"}, {"name": "b"}))
        assert [t.name for t in config.tenants] == ["a", "b"]
        assert all(isinstance(t, TenantConfig) for t in config.tenants)

    def test_duplicate_tenant_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ServeConfig(tenants=({"name": "a"}, {"name": "a"}))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"host": ""},
            {"port": -1},
            {"port": 70000},
            {"max_frame_bytes": 16},
            {"max_frame_bytes": MAX_FRAME_BYTES + 1},
            {"tenants": (7,)},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServeConfig(**kwargs)

    def test_file_round_trip(self, tmp_path):
        config = ServeConfig(
            port=0,
            tenants=(
                TenantConfig(
                    name="alpha",
                    cluster=ClusterConfig(partitions=2, seed=9),
                    workload_dataset="fraud",
                ),
            ),
        )
        path = tmp_path / "serve.json"
        path.write_text(json.dumps(config.as_dict()), encoding="utf-8")
        assert ServeConfig.from_file(path) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            ServeConfig.from_dict({"prot": 1})
