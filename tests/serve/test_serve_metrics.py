"""The ``metrics`` verb: merged telemetry, expositions, slow journal."""

import pytest

from repro.serve import ServeClient
from repro.serve import daemon as daemon_module
from repro.serve.client import BadRequestError, RemoteError


@pytest.fixture()
def client(serve_factory, make_tenant):
    server = serve_factory(make_tenant(workload_dataset="social"))
    with ServeClient(port=server.port, tenant="alpha") as live:
        yield live


class TestMetricsVerb:
    def test_snapshot_covers_serve_and_session_series(self, client):
        client.ingest("social", size=60, seed=1)
        client.run_workload(executions=10, seed=2)
        result = client.metrics()
        snap = result["snapshot"]
        assert snap["schema"] == "loom-repro/metrics/v1"
        metrics = snap["metrics"]

        def total(name):
            return sum(
                row.get("value", 0.0) for row in metrics[name]["series"]
            )

        # Session-side series reached the merged snapshot...
        assert total("engine.events") > 0
        assert total("executor.queries") == 10.0
        assert total("store.vertices") > 0
        # ...and serve-side telemetry did too (requests by verb).
        by_verb = {
            row["labels"]["verb"]: row["value"]
            for row in metrics["serve.requests"]["series"]
        }
        assert by_verb["ingest"] == 1.0
        assert by_verb["workload"] == 1.0
        assert all(
            row["labels"]["outcome"] == "ok"
            for row in metrics["serve.requests"]["series"]
        )
        assert metrics["serve.verb_seconds"]["series"]

    def test_scrapes_are_idempotent(self, client):
        client.ingest("social", size=60, seed=1)
        first = client.metrics()["snapshot"]["metrics"]
        second = client.metrics()["snapshot"]["metrics"]

        def engine_events(metrics):
            [row] = metrics["engine.events"]["series"]
            return row["value"]

        # Scraped cumulative sources must not double-count per call.
        assert engine_events(first) == engine_events(second)

    def test_prom_format(self, client):
        client.ingest("social", size=60, seed=1)
        result = client.metrics(format="prom")
        text = result["text"]
        assert "# TYPE serve_requests counter" in text
        assert 'serve_requests{outcome="ok",tenant="alpha",verb="ingest"} 1' in text
        assert "# TYPE engine_batch_seconds histogram" in text
        assert result["slow_commands"] == []

    def test_unknown_format_is_a_bad_request(self, client):
        with pytest.raises(BadRequestError):
            client.metrics(format="xml")

    def test_error_outcomes_are_counted(self, client):
        with pytest.raises(RemoteError):
            client.call("query", {"pattern": None})  # malformed on purpose
        outcomes = {
            row["labels"]["outcome"]
            for row in client.metrics()["snapshot"]["metrics"][
                "serve.requests"
            ]["series"]
        }
        assert any(outcome != "ok" for outcome in outcomes)


class TestSlowJournal:
    def test_slow_commands_land_in_the_journal(
        self, serve_factory, make_tenant, monkeypatch
    ):
        # Anything above 0 seconds is "slow": every command journals.
        monkeypatch.setattr(daemon_module, "SLOW_COMMAND_SECONDS", 0.0)
        server = serve_factory(make_tenant(workload_dataset="social"))
        with ServeClient(port=server.port, tenant="alpha") as client:
            client.ingest("social", size=40, seed=1)
            result = client.metrics()
        entries = result["slow_commands"]
        assert entries, "every command should journal at threshold 0"
        assert entries[0]["verb"] == "ingest"
        assert entries[0]["outcome"] == "ok"
        assert entries[0]["seconds"] >= 0.0
        slow_series = result["snapshot"]["metrics"]["serve.slow_commands"][
            "series"
        ]
        assert sum(row["value"] for row in slow_series) == len(entries)
