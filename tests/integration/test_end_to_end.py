"""Cross-module integration and property tests.

These exercise the full pipeline -- generator -> stream -> partitioner ->
store -> executor -- under randomised inputs, asserting the invariants
that must hold whatever the configuration:

* every streamed vertex ends up assigned exactly once;
* no partition ever exceeds its capacity;
* motif matches tracked by LOOM's matcher are genuine sub-graphs of the
  buffered window;
* the traversal ledger's totals are consistent;
* identical seeds give identical outputs end to end.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    DistributedGraphStore,
    LoomConfig,
    LoomPartitioner,
    PatternQuery,
    Workload,
    run_workload,
)
from repro.graph import LabelledGraph
from repro.graph.generators import erdos_renyi, plant_motifs
from repro.graph.isomorphism import is_isomorphic
from repro.graph.views import edge_subgraph
from repro.partitioning.base import default_capacity
from repro.stream.sources import replay, stream_from_graph


def small_workload():
    return Workload(
        [
            PatternQuery("abc", LabelledGraph.path("abc"), 2.0),
            PatternQuery("ab", LabelledGraph.path("ab"), 1.0),
        ]
    )


@st.composite
def loom_scenarios(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n = draw(st.integers(min_value=10, max_value=60))
    k = draw(st.sampled_from([2, 3, 4]))
    window = draw(st.sampled_from([1, 4, 16, 64]))
    ordering = draw(st.sampled_from(["natural", "random", "bfs", "adversarial"]))
    return seed, n, k, window, ordering


class TestLoomPipelineProperties:
    @settings(max_examples=30, deadline=None)
    @given(loom_scenarios())
    def test_every_vertex_assigned_within_capacity(self, scenario):
        seed, n, k, window, ordering = scenario
        graph = erdos_renyi(n, 0.1, rng=random.Random(seed))
        events = stream_from_graph(
            graph, ordering=ordering, rng=random.Random(seed + 1)
        )
        capacity = default_capacity(n, k, 1.2)
        loom = LoomPartitioner(
            small_workload(),
            LoomConfig(k=k, capacity=capacity, window_size=window,
                       motif_threshold=0.3),
        )
        assignment = loom.partition_stream(events)
        assert assignment.num_assigned == graph.num_vertices
        assert max(assignment.sizes()) <= capacity
        # The stream replays to the same graph we partitioned.
        assert replay(events) == graph

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_matcher_matches_are_genuine_window_subgraphs(self, seed):
        motif = LabelledGraph.path("abc")
        graph = plant_motifs([(motif, 6)], noise_vertices=8,
                             noise_edge_probability=0.05,
                             rng=random.Random(seed))
        workload = Workload([PatternQuery("abc", motif)])
        capacity = default_capacity(graph.num_vertices, 2, 1.5)
        loom = LoomPartitioner(
            workload,
            LoomConfig(k=2, capacity=capacity,
                       window_size=graph.num_vertices, motif_threshold=0.5),
        )
        for event in stream_from_graph(
            graph, ordering="random", rng=random.Random(seed + 1)
        ):
            loom.process(event)
            for match in loom.matcher.matches():
                candidate = edge_subgraph(loom.window.graph, match.edges)
                node = loom.trie.node_by_signature(match.node_signature)
                assert node is not None
                assert is_isomorphic(candidate, node.graph)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_end_to_end_determinism(self, seed):
        graph = erdos_renyi(30, 0.12, rng=random.Random(seed))

        def pipeline():
            events = stream_from_graph(
                graph, ordering="random", rng=random.Random(seed + 1)
            )
            loom = LoomPartitioner(
                small_workload(),
                LoomConfig(k=3, capacity=default_capacity(30, 3, 1.3),
                           window_size=8, motif_threshold=0.3),
            )
            assignment = loom.partition_stream(events)
            stats = run_workload(
                DistributedGraphStore(graph, assignment),
                small_workload(),
                executions=20,
                rng=random.Random(seed + 2),
            )
            return assignment.assigned(), stats.ledger.local, stats.ledger.remote

        assert pipeline() == pipeline()


class TestLedgerConsistency:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from([1, 2, 4]))
    def test_remote_zero_iff_k1(self, seed, k):
        graph = erdos_renyi(25, 0.15, rng=random.Random(seed))
        events = stream_from_graph(
            graph, ordering="random", rng=random.Random(seed + 1)
        )
        loom = LoomPartitioner(
            small_workload(),
            LoomConfig(k=k, capacity=default_capacity(25, k, 1.3),
                       window_size=8, motif_threshold=0.3),
        )
        assignment = loom.partition_stream(events)
        stats = run_workload(
            DistributedGraphStore(graph, assignment),
            small_workload(),
            executions=15,
            rng=random.Random(seed + 2),
        )
        assert stats.ledger.total == stats.ledger.local + stats.ledger.remote
        if k == 1:
            assert stats.ledger.remote == 0
            assert stats.fully_local_rate == 1.0


class TestFailureInjection:
    def test_window_capacity_one_with_dense_graph(self):
        # Degenerate window + dense graph: everything must still assign.
        graph = erdos_renyi(20, 0.5, rng=random.Random(9))
        events = stream_from_graph(graph, ordering="random", rng=random.Random(10))
        loom = LoomPartitioner(
            small_workload(),
            LoomConfig(k=2, capacity=default_capacity(20, 2, 1.1),
                       window_size=1, motif_threshold=0.3),
        )
        assignment = loom.partition_stream(events)
        assert assignment.num_assigned == 20

    def test_tight_capacity_exact_fit(self):
        # slack 1.0: capacity exactly n/k; grouping must never overflow.
        graph = plant_motifs(
            [(LabelledGraph.path("abc"), 8)], rng=random.Random(11)
        )
        n = graph.num_vertices
        events = stream_from_graph(graph, ordering="random", rng=random.Random(12))
        loom = LoomPartitioner(
            Workload([PatternQuery("abc", LabelledGraph.path("abc"))]),
            LoomConfig(k=4, capacity=n // 4, window_size=16,
                       motif_threshold=0.5),
        )
        assignment = loom.partition_stream(events)
        assert assignment.num_assigned == n
        assert max(assignment.sizes()) <= n // 4

    def test_workload_disjoint_from_graph_labels(self):
        # Workload speaks labels the graph never uses: LOOM must behave
        # exactly like windowed LDG (no matches, no groups) and still work.
        graph = erdos_renyi(30, 0.1, alphabet="xyz", rng=random.Random(13))
        events = stream_from_graph(graph, ordering="random", rng=random.Random(14))
        loom = LoomPartitioner(
            small_workload(),  # labels a, b, c
            LoomConfig(k=2, capacity=default_capacity(30, 2, 1.2),
                       window_size=16, motif_threshold=0.1),
        )
        assignment = loom.partition_stream(events)
        assert assignment.num_assigned == 30
        assert loom.stats["groups"] == 0

    def test_empty_stream(self):
        loom = LoomPartitioner(
            small_workload(),
            LoomConfig(k=2, capacity=4, window_size=4),
        )
        assignment = loom.partition_stream([])
        assert assignment.num_assigned == 0
