"""Tests for the graph-stream motif matcher, including the figure-3 case."""


from repro.core.matcher import StreamMotifMatcher
from repro.graph import LabelledGraph
from repro.stream import SlidingWindow
from repro.tpstry import TPSTryPP
from repro.workload import PatternQuery, Workload, figure1_workload


def make_matcher(workload, *, threshold=0.3, window=16, fix=True, verify=False):
    trie = TPSTryPP.from_workload(workload)
    win = SlidingWindow(window)
    matcher = StreamMotifMatcher(
        trie,
        win.graph,
        frequent_signatures=trie.frequent_signatures(threshold),
        resignature_fix=fix,
        verify=verify,
    )
    return win, matcher


def abc_workload():
    return Workload([PatternQuery("abc", LabelledGraph.path("abc"))])


def feed_edge(win, matcher, u, v):
    kind = win.add_edge(u, v)
    assert kind == "internal"
    return matcher.on_edge(u, v)


class TestDirectAndExtended:
    def test_pair_match_registered(self):
        win, matcher = make_matcher(abc_workload())
        win.add_vertex(10, "a")
        win.add_vertex(11, "b")
        created = feed_edge(win, matcher, 10, 11)
        assert len(created) == 1
        assert created[0].vertices == frozenset({10, 11})

    def test_non_motif_edge_ignored(self):
        win, matcher = make_matcher(abc_workload())
        win.add_vertex(10, "a")
        win.add_vertex(11, "a")  # a-a never occurs in the workload
        created = feed_edge(win, matcher, 10, 11)
        assert created == []
        assert matcher.matches() == []

    def test_extension_to_full_motif(self):
        win, matcher = make_matcher(abc_workload())
        win.add_vertex(10, "a")
        win.add_vertex(11, "b")
        win.add_vertex(12, "c")
        feed_edge(win, matcher, 10, 11)
        created = feed_edge(win, matcher, 11, 12)
        sizes = sorted(m.size for m in matcher.matches())
        assert sizes == [2, 2, 3]  # ab, bc, abc
        assert any(m.vertices == frozenset({10, 11, 12}) for m in created)

    def test_no_growth_beyond_workload_motifs(self):
        win, matcher = make_matcher(abc_workload())
        for vid, label in [(10, "a"), (11, "b"), (12, "c"), (13, "c")]:
            win.add_vertex(vid, label)
        feed_edge(win, matcher, 10, 11)
        feed_edge(win, matcher, 11, 12)
        feed_edge(win, matcher, 12, 13)  # c-c edge: not in any query
        assert all(m.size <= 3 for m in matcher.matches())

    def test_square_motif_detected_via_cycle_close(self):
        win, matcher = make_matcher(figure1_workload())
        for vid, label in [(1, "a"), (2, "b"), (5, "b"), (6, "a")]:
            win.add_vertex(vid, label)
        feed_edge(win, matcher, 1, 2)
        feed_edge(win, matcher, 1, 5)
        feed_edge(win, matcher, 2, 6)
        created = feed_edge(win, matcher, 5, 6)  # closes the square
        assert any(m.size == 4 and len(m.edges) == 4 for m in created)


class TestFigure3Regrow:
    """The shared-substructure situation of the paper's figure 3, plus the
    general fragment-join case the 4.3 re-signature pass exists for."""

    def build_figure3(self, fix):
        win, matcher = make_matcher(abc_workload(), fix=fix)
        for vid, label in [(1, "a"), (2, "b"), (3, "c"), (4, "c")]:
            win.add_vertex(vid, label)
        feed_edge(win, matcher, 1, 2)
        feed_edge(win, matcher, 2, 3)   # S = a(1)-b(2)-c(3)
        feed_edge(win, matcher, 2, 4)   # the figure-3 edge
        return matcher

    def test_figure3_both_instances_found(self):
        # Song et al track one signature per sub-graph and so miss the
        # second abc; our matcher tracks every intermediate node match, so
        # DAG extension alone recovers it -- the re-signature fix is then
        # only needed for fragment joins (next tests).
        matcher = self.build_figure3(fix=False)
        abc_matches = {m.vertices for m in matcher.matches() if m.size == 3}
        assert frozenset({1, 2, 3}) in abc_matches
        assert frozenset({1, 2, 4}) in abc_matches

    def build_fragment_join(self, fix):
        workload = Workload([PatternQuery("abcd", LabelledGraph.path("abcd"))])
        win, matcher = make_matcher(workload, fix=fix)
        for vid, label in [(1, "a"), (2, "b"), (3, "c"), (4, "d")]:
            win.add_vertex(vid, label)
        feed_edge(win, matcher, 1, 2)   # fragment a-b
        feed_edge(win, matcher, 3, 4)   # disjoint fragment c-d
        feed_edge(win, matcher, 2, 3)   # joins them
        return matcher

    def test_fragment_join_with_fix_finds_full_motif(self):
        matcher = self.build_fragment_join(fix=True)
        assert any(m.size == 4 for m in matcher.matches())
        assert matcher.stats["regrown"] >= 1

    def test_fragment_join_without_fix_misses_full_motif(self):
        matcher = self.build_fragment_join(fix=False)
        sizes = {m.size for m in matcher.matches()}
        assert 4 not in sizes          # abcd never assembled
        assert 3 in sizes              # abc / bcd found by extension


class TestGroupsAndForgetting:
    def test_assignment_group_merges_overlaps(self):
        matcher = TestFigure3Regrow().build_figure3(fix=True)
        group = matcher.assignment_group(1, max_size=16)
        assert group == frozenset({1, 2, 3, 4})

    def test_assignment_group_respects_cap(self):
        matcher = TestFigure3Regrow().build_figure3(fix=True)
        group = matcher.assignment_group(3, max_size=3)
        # The 4-vertex merge is rejected; the 3-vertex match through 3 stays.
        assert group == frozenset({1, 2, 3})

    def test_vertex_without_matches_gets_singleton_group(self):
        win, matcher = make_matcher(abc_workload())
        win.add_vertex(42, "a")
        assert matcher.assignment_group(42, max_size=8) == frozenset({42})

    def test_forget_removes_all_touching_matches(self):
        matcher = TestFigure3Regrow().build_figure3(fix=True)
        matcher.forget({2})
        assert matcher.matches() == []  # every match contained vertex 2

    def test_forget_keeps_disjoint_matches(self):
        win, matcher = make_matcher(abc_workload())
        for vid, label in [(1, "a"), (2, "b"), (10, "a"), (11, "b")]:
            win.add_vertex(vid, label)
        feed_edge(win, matcher, 1, 2)
        feed_edge(win, matcher, 10, 11)
        matcher.forget({1})
        remaining = {m.vertices for m in matcher.matches()}
        assert remaining == {frozenset({10, 11})}

    def test_frequent_filter(self):
        # Threshold above every p-value: nothing is "frequent", groups are
        # singletons even though matches are tracked.
        win, matcher = make_matcher(abc_workload(), threshold=1.01)
        win.add_vertex(1, "a")
        win.add_vertex(2, "b")
        feed_edge(win, matcher, 1, 2)
        assert matcher.matches()  # tracked
        assert matcher.frequent_matches_containing(1) == []
        assert matcher.assignment_group(1, max_size=8) == frozenset({1})


class TestVerification:
    def test_verified_mode_accepts_true_matches(self):
        win, matcher = make_matcher(abc_workload(), verify=True)
        win.add_vertex(1, "a")
        win.add_vertex(2, "b")
        created = feed_edge(win, matcher, 1, 2)
        assert len(created) == 1
