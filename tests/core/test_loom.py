"""End-to-end tests for the LOOM partitioner."""

import random


from repro.core import LoomConfig, LoomPartitioner
from repro.graph import LabelledGraph
from repro.graph.generators import plant_motifs
from repro.partitioning import LinearDeterministicGreedy
from repro.stream.sources import stream_from_graph, stream_vertices
from repro.workload import PatternQuery, Workload, figure1_graph, figure1_workload


def square_only_workload():
    return Workload([PatternQuery("q1", LabelledGraph.cycle("abab"))])


class TestBasicContract:
    def test_all_vertices_assigned(self):
        g = figure1_graph()
        loom = LoomPartitioner(
            figure1_workload(), LoomConfig(k=2, capacity=5, window_size=8)
        )
        assignment = loom.partition_stream(
            stream_from_graph(g, ordering="random", rng=random.Random(1))
        )
        assert assignment.num_assigned == g.num_vertices

    def test_capacity_respected(self):
        g = figure1_graph()
        loom = LoomPartitioner(
            figure1_workload(), LoomConfig(k=2, capacity=4, window_size=8)
        )
        assignment = loom.partition_stream(
            stream_from_graph(g, ordering="random", rng=random.Random(2))
        )
        assert max(assignment.sizes()) <= 4

    def test_deterministic_given_seed(self):
        g = figure1_graph()

        def run():
            loom = LoomPartitioner(
                figure1_workload(), LoomConfig(k=2, capacity=5, window_size=4)
            )
            return loom.partition_stream(
                stream_from_graph(g, ordering="random", rng=random.Random(3))
            ).assigned()

        assert run() == run()

    def test_window_one_equals_plain_ldg(self):
        # With a single-slot window no motif can ever assemble, so LOOM's
        # decisions collapse to vertex LDG over the same stream.
        g = figure1_graph()
        events = stream_from_graph(g, ordering="random", rng=random.Random(4))
        loom = LoomPartitioner(
            figure1_workload(), LoomConfig(k=2, capacity=5, window_size=1)
        )
        loom_assigned = loom.partition_stream(events).assigned()
        from repro.partitioning.base import partition_stream as drive

        ldg_assigned = drive(
            LinearDeterministicGreedy(), events, k=2, capacity=5
        ).assigned()
        assert loom_assigned == ldg_assigned


class TestMotifColocation:
    def test_square_colocated_on_natural_stream(self):
        g = figure1_graph()
        events = stream_vertices(g, [1, 2, 3, 4, 5, 6, 7, 8])
        loom = LoomPartitioner(
            square_only_workload(),
            LoomConfig(k=2, capacity=5, window_size=8, motif_threshold=0.5),
        )
        assignment = loom.partition_stream(events)
        square_partitions = {assignment.partition_of(v) for v in (1, 2, 5, 6)}
        assert len(square_partitions) == 1
        assert loom.stats["groups"] >= 1

    def test_square_colocated_on_adversarial_interleaving(self):
        # Square vertices arrive interleaved with the rest; the window
        # still assembles the motif before anything is placed.
        g = figure1_graph()
        events = stream_vertices(g, [1, 3, 2, 7, 5, 4, 6, 8])
        loom = LoomPartitioner(
            square_only_workload(),
            LoomConfig(k=2, capacity=5, window_size=8, motif_threshold=0.5),
        )
        assignment = loom.partition_stream(events)
        square_partitions = {assignment.partition_of(v) for v in (1, 2, 5, 6)}
        assert len(square_partitions) == 1

    def test_grouping_disabled_places_individually(self):
        g = figure1_graph()
        events = stream_vertices(g, [1, 2, 3, 4, 5, 6, 7, 8])
        loom = LoomPartitioner(
            square_only_workload(),
            LoomConfig(
                k=2, capacity=5, window_size=8, motif_threshold=0.5,
                group_matches=False,
            ),
        )
        loom.partition_stream(events)
        assert loom.stats["groups"] == 0
        assert loom.stats["singles"] == 8

    def test_oversized_group_splits_gracefully(self):
        # Chain of abc motifs sharing substructure grows past the cap; LOOM
        # must fall back to individual assignment without violating capacity.
        motif = LabelledGraph.path("abc")
        g = plant_motifs([(motif, 6)], bridge_probability=1.0, rng=random.Random(5))
        workload = Workload([PatternQuery("abc", motif)])
        loom = LoomPartitioner(
            workload,
            LoomConfig(
                k=3, capacity=8, window_size=18, motif_threshold=0.5,
                max_group_size=4,
            ),
        )
        assignment = loom.partition_stream(
            stream_from_graph(g, ordering="random", rng=random.Random(6))
        )
        assert assignment.num_assigned == g.num_vertices
        assert max(assignment.sizes()) <= 8


class TestWorkloadAwareness:
    def test_loom_cuts_fewer_motif_edges_than_ldg_on_scattered_stream(self):
        """The headline behaviour at the structural level: edges inside
        planted motif instances survive partitioning under LOOM."""
        motif = LabelledGraph.path("abc")
        g = plant_motifs(
            [(motif, 24)], noise_vertices=24, noise_edge_probability=0.02,
            rng=random.Random(7),
        )
        workload = Workload([PatternQuery("abc", motif)])
        events = stream_from_graph(g, ordering="random", rng=random.Random(8))

        loom = LoomPartitioner(
            workload,
            LoomConfig(k=4, capacity=30, window_size=48, motif_threshold=0.5),
        )
        loom_assignment = loom.partition_stream(events)

        from repro.partitioning.base import partition_stream as drive

        ldg_assignment = drive(
            LinearDeterministicGreedy(), events, k=4, capacity=30
        )

        def motif_edge_cut(assignment):
            # Only edges between motif-instance vertices (ids below the
            # noise offset, laid out consecutively in triples).
            cut = 0
            total = 0
            for base in range(0, 24 * 3, 3):
                for u, v in ((base, base + 1), (base + 1, base + 2)):
                    total += 1
                    if assignment.partition_of(u) != assignment.partition_of(v):
                        cut += 1
            return cut / total

        assert motif_edge_cut(loom_assignment) < motif_edge_cut(ldg_assignment)

    def test_stats_expose_group_activity(self):
        motif = LabelledGraph.path("ab")
        g = plant_motifs([(motif, 10)], rng=random.Random(9))
        workload = Workload([PatternQuery("ab", motif)])
        loom = LoomPartitioner(
            workload,
            LoomConfig(k=2, capacity=12, window_size=8, motif_threshold=0.5),
        )
        loom.partition_stream(
            stream_from_graph(g, ordering="random", rng=random.Random(10))
        )
        assert loom.stats["groups"] > 0
        assert loom.stats["group_vertices"] >= 2 * loom.stats["groups"]


class TestTraversalAwareSingles:
    def test_traversal_aware_mode_runs(self):
        g = figure1_graph()
        loom = LoomPartitioner(
            figure1_workload(),
            LoomConfig(
                k=2, capacity=5, window_size=4, traversal_aware_singles=True
            ),
        )
        assignment = loom.partition_stream(
            stream_from_graph(g, ordering="random", rng=random.Random(11))
        )
        assert assignment.num_assigned == g.num_vertices
