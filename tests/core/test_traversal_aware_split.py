"""Tests for the two future-work extensions: traversal-aware LDG scoring
and local splitting of oversized motif groups."""

import random

import pytest

from repro.core import LoomConfig, LoomPartitioner, TraversalAwareLDG
from repro.exceptions import ConfigurationError
from repro.graph import LabelledGraph
from repro.graph.generators import plant_motifs
from repro.partitioning import PartitionAssignment, partition_stream
from repro.partitioning.base import default_capacity
from repro.stream.sources import stream_from_graph
from repro.tpstry import TPSTryPP
from repro.workload import PatternQuery, Workload, figure1_workload


class TestTraversalAwareLDG:
    def make_trie(self):
        return TPSTryPP.from_workload(figure1_workload())

    def test_edge_probability_of_workload_edge(self):
        ta = TraversalAwareLDG(self.make_trie())
        # a-b occurs in every figure-1 query.
        assert ta.edge_probability("a", "b") == pytest.approx(1.0)

    def test_edge_probability_symmetric(self):
        ta = TraversalAwareLDG(self.make_trie())
        assert ta.edge_probability("a", "b") == ta.edge_probability("b", "a")

    def test_edge_probability_of_unknown_edge_zero(self):
        ta = TraversalAwareLDG(self.make_trie())
        assert ta.edge_probability("a", "z") == 0.0

    def test_negative_base_weight_rejected(self):
        with pytest.raises(ValueError):
            TraversalAwareLDG(self.make_trie(), base_weight=-0.1)

    def test_prefers_high_probability_neighbours(self):
        # Vertex 'b' arrives with one 'a' neighbour in partition 0 and one
        # 'd' neighbour in partition 1; a-b is a hot motif edge, b-d is
        # not.  Plain LDG would tie (1 edge each); traversal-aware LDG
        # must pick the a side.
        trie = self.make_trie()
        ta = TraversalAwareLDG(trie)
        assignment = PartitionAssignment(2, 10)
        assignment.assign("a1", 0)
        assignment.assign("d1", 1)
        ta.record_label("a1", "a")
        ta.record_label("d1", "d")
        chosen = ta.place("b1", "b", ["a1", "d1"], assignment)
        assert chosen == 0

    def test_unknown_neighbour_labels_fall_back_to_base(self):
        ta = TraversalAwareLDG(self.make_trie())
        assignment = PartitionAssignment(2, 10)
        assignment.assign("x", 0)
        # Label of 'x' never recorded: still places fine.
        chosen = ta.place("b1", "b", ["x"], assignment)
        assert chosen in (0, 1)

    def test_works_as_standalone_partitioner(self):
        graph = plant_motifs(
            [(LabelledGraph.path("abc"), 10)], rng=random.Random(1)
        )
        events = stream_from_graph(graph, ordering="random", rng=random.Random(2))
        trie = TPSTryPP.from_workload(
            Workload([PatternQuery("abc", LabelledGraph.path("abc"))])
        )
        assignment = partition_stream(
            TraversalAwareLDG(trie), events, k=3,
            capacity=default_capacity(graph.num_vertices, 3, 1.2),
        )
        assert assignment.num_assigned == graph.num_vertices


class TestOversizeSplit:
    @staticmethod
    def square_ladder(columns: int) -> LabelledGraph:
        """A 2 x columns grid whose every unit square matches the a-b-a-b
        cycle motif; adjacent squares share an edge, so the section-4.4
        group closure merges the whole ladder into one giant group."""
        graph = LabelledGraph()
        for i in range(columns):
            graph.add_vertex(("t", i), "a" if i % 2 == 0 else "b")
            graph.add_vertex(("b", i), "b" if i % 2 == 0 else "a")
        for i in range(columns):
            graph.add_edge(("t", i), ("b", i))
            if i + 1 < columns:
                graph.add_edge(("t", i), ("t", i + 1))
                graph.add_edge(("b", i), ("b", i + 1))
        return graph

    def oversized_scenario(self, strategy):
        graph = self.square_ladder(12)       # 24 vertices, 11 chained squares
        workload = Workload([PatternQuery("square", LabelledGraph.cycle("abab"))])
        config = LoomConfig(
            k=4, capacity=7, window_size=24, motif_threshold=0.5,
            max_group_size=24, oversize_strategy=strategy,
        )
        loom = LoomPartitioner(workload, config)
        events = stream_from_graph(graph, ordering="random", rng=random.Random(4))
        return graph, loom, loom.partition_stream(events)

    def test_invalid_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            LoomConfig(k=2, capacity=4, oversize_strategy="magic")

    @pytest.mark.parametrize("strategy", ["individual", "split"])
    def test_both_strategies_complete_within_capacity(self, strategy):
        graph, loom, assignment = self.oversized_scenario(strategy)
        assert assignment.num_assigned == graph.num_vertices
        assert max(assignment.sizes()) <= 7
        assert loom.stats["split_groups"] > 0

    def test_split_strategy_places_pieces_as_groups(self):
        _, loom, _ = self.oversized_scenario("split")
        # Halving must recover at least some grouped placements that the
        # individual strategy gives up on.
        assert loom.stats["groups"] > 0

    def test_split_keeps_more_ladder_edges_internal(self):
        graph, _, individual = self.oversized_scenario("individual")
        _, _, split = self.oversized_scenario("split")

        def cut_edges(assignment):
            return sum(
                1
                for u, v in graph.edges()
                if assignment.partition_of(u) != assignment.partition_of(v)
            )

        assert cut_edges(split) <= cut_edges(individual)
