"""Equivalence: optimised matcher == PR-1 reference, byte for byte.

The interned-signature / int-edge-key / trie-lookup-table rebuild of the
stream matcher is a pure representation change: on any label stream it
must produce the identical match set (edges, vertices, signatures), the
identical diagnostics, and -- through LOOM -- the identical partition
assignments as the reference implementation preserved verbatim in
:mod:`repro.bench.legacy`.  These tests pin that down on the paper's
figure-1/figure-3 workloads and on randomised streams with window expiry.
"""

import random

import pytest

from repro.bench.legacy import (
    LegacyLoomPartitioner,
    LegacySlidingWindow,
    LegacyStreamMotifMatcher,
)
from repro.core.config import LoomConfig
from repro.core.loom import LoomPartitioner
from repro.core.matcher import StreamMotifMatcher
from repro.graph.generators import barabasi_albert
from repro.graph.labelled import LabelledGraph
from repro.partitioning.base import default_capacity
from repro.stream.sources import stream_from_graph
from repro.stream.window import SlidingWindow
from repro.tpstry.trie import TPSTryPP
from repro.workload import (
    PatternQuery,
    Workload,
    figure1_graph,
    figure1_workload,
)


def build_stacks(workload, *, window=16, threshold=0.3, verify=False):
    """One optimised and one legacy (window, matcher) pair, same workload."""
    stacks = []
    for window_cls, matcher_cls in (
        (SlidingWindow, StreamMotifMatcher),
        (LegacySlidingWindow, LegacyStreamMotifMatcher),
    ):
        trie = TPSTryPP.from_workload(workload)
        win = window_cls(window)
        matcher = matcher_cls(
            trie,
            win.graph,
            frequent_signatures=trie.frequent_signatures(threshold),
            verify=verify,
        )
        stacks.append((win, matcher))
    return stacks


def match_set(matcher):
    """Representation-independent view of the tracked matches."""
    return {
        (m.edges, m.vertices, m.signature, m.node_signature)
        for m in matcher.matches()
    }


def created_set(created):
    return {(m.edges, m.vertices, m.signature, m.node_signature) for m in created}


COMMON_STATS = ("direct", "extended", "regrown", "rejected")


def assert_equivalent(new_stack, old_stack):
    _, new_matcher = new_stack
    _, old_matcher = old_stack
    assert match_set(new_matcher) == match_set(old_matcher)
    for key in COMMON_STATS:
        assert new_matcher.stats[key] == old_matcher.stats[key], key


def drive(stacks, script):
    """Replay a window script against both stacks, comparing throughout."""
    (new_win, new_matcher), (old_win, old_matcher) = stacks
    for op in script:
        if op[0] == "v":
            _, vertex, label = op
            for win, matcher in stacks:
                if win.is_full:
                    oldest = win.oldest()
                    win.remove(oldest)
                    matcher.forget({oldest})
                win.add_vertex(vertex, label)
        else:
            _, u, v = op
            new_kind = new_win.add_edge(u, v)
            old_kind = old_win.add_edge(u, v)
            assert new_kind == old_kind
            if new_kind == "internal":
                new_created = new_matcher.on_edge(u, v)
                old_created = old_matcher.on_edge(u, v)
                assert created_set(new_created) == created_set(old_created)
        assert_equivalent(stacks[0], stacks[1])


def abc_workload():
    return Workload([PatternQuery("abc", LabelledGraph.path("abc"))])


def mixed_workload():
    return Workload(
        [
            PatternQuery("abc", LabelledGraph.path("abc"), 3.0),
            PatternQuery("square", LabelledGraph.cycle("abab"), 1.0),
            PatternQuery("abcd", LabelledGraph.path("abcd"), 2.0),
        ]
    )


class TestScriptedEquivalence:
    def test_figure3_shared_substructure(self):
        stacks = build_stacks(abc_workload())
        drive(
            stacks,
            [
                ("v", 1, "a"), ("v", 2, "b"), ("v", 3, "c"), ("v", 4, "c"),
                ("e", 1, 2), ("e", 2, 3), ("e", 2, 4),
            ],
        )

    def test_fragment_join_regrow(self):
        stacks = build_stacks(
            Workload([PatternQuery("abcd", LabelledGraph.path("abcd"))])
        )
        drive(
            stacks,
            [
                ("v", 1, "a"), ("v", 2, "b"), ("v", 3, "c"), ("v", 4, "d"),
                ("e", 1, 2), ("e", 3, 4), ("e", 2, 3),
            ],
        )

    def test_window_expiry_evicts_identically(self):
        stacks = build_stacks(abc_workload(), window=3)
        script = [
            ("v", 1, "a"), ("v", 2, "b"), ("v", 3, "c"),
            ("e", 1, 2), ("e", 2, 3),
            # Window full: the next arrivals expire 1, then 2.
            ("v", 4, "b"), ("e", 3, 4),
            ("v", 5, "a"), ("e", 4, 5),
        ]
        drive(stacks, script)
        new_matcher = stacks[0][1]
        assert new_matcher.stats["evicted"] >= 1

    def test_verify_mode(self):
        stacks = build_stacks(figure1_workload(), verify=True)
        drive(
            stacks,
            [
                ("v", 1, "a"), ("v", 2, "b"), ("v", 5, "b"), ("v", 6, "a"),
                ("e", 1, 2), ("e", 1, 5), ("e", 2, 6), ("e", 5, 6),
            ],
        )


@pytest.mark.parametrize("seed", range(6))
def test_randomised_streams_identical(seed):
    """Property-style: random label streams with expiry, every step equal."""
    rng = random.Random(seed)
    stacks = build_stacks(mixed_workload(), window=8, threshold=0.2)
    labels = "abcd"
    alive: list[int] = []
    script = []
    for vertex in range(60):
        script.append(("v", vertex, rng.choice(labels)))
        alive.append(vertex)
        window_view = alive[-8:]
        for _ in range(rng.randrange(3)):
            if len(window_view) < 2:
                break
            u, v = rng.sample(window_view, 2)
            script.append(("e", u, v))
    drive(stacks, script)


@pytest.mark.parametrize(
    "ordering,seed", [("random", 0), ("bfs", 1), ("random", 2)]
)
def test_loom_pipeline_assignments_identical(ordering, seed):
    """End-to-end: optimised LOOM == PR-1 LOOM on whole streams."""
    rng = random.Random(seed)
    graph = barabasi_albert(300, 2, rng=rng)
    events = stream_from_graph(graph, ordering=ordering, rng=random.Random(seed + 1))
    workload = mixed_workload()
    capacity = default_capacity(graph.num_vertices, 4, 1.2)
    config = LoomConfig(k=4, capacity=capacity, window_size=32, motif_threshold=0.2)
    new = LoomPartitioner(workload, config)
    old = LegacyLoomPartitioner(workload, config)
    new_assignment = new.partition_stream(events)
    old_assignment = old.partition_stream(events)
    assert new_assignment.assigned() == old_assignment.assigned()
    assert new.stats == old.stats
    for key in COMMON_STATS:
        assert new.matcher.stats[key] == old.matcher.stats[key]


def test_figure1_workload_assignments_identical():
    graph = figure1_graph()
    events = stream_from_graph(graph, ordering="bfs", rng=random.Random(0))
    workload = figure1_workload(q1_frequency=4.0)
    config = LoomConfig(k=2, capacity=6, window_size=4, motif_threshold=0.5)
    new = LoomPartitioner(workload, config)
    old = LegacyLoomPartitioner(workload, config)
    assert new.partition_stream(events).assigned() == (
        old.partition_stream(events).assigned()
    )
