"""LOOM co-location behaviour on each domain dataset (mini versions).

The E2 experiment measures the aggregate; these tests pin down the
specific structural outcomes LOOM is supposed to deliver per domain:
fraud rings staying intact, protein complexes staying intact, and the
hot social pattern's matches not straddling partitions more than the
baseline's.
"""

import random


from repro.core import LoomConfig, LoomPartitioner
from repro.datasets import (
    fraud_network,
    fraud_workload,
    protein_network,
    protein_workload,
)
from repro.partitioning import LinearDeterministicGreedy, partition_stream
from repro.partitioning.base import default_capacity
from repro.stream.sources import stream_from_graph


def loom_assign(graph, workload, *, k=4, window=96, threshold=0.4, seed=5):
    events = stream_from_graph(
        graph, ordering="random", rng=random.Random(seed)
    )
    capacity = default_capacity(graph.num_vertices, k, 1.2)
    loom = LoomPartitioner(
        workload,
        LoomConfig(k=k, capacity=capacity, window_size=window,
                   motif_threshold=threshold),
    )
    return loom, loom.partition_stream(events), events, capacity


class TestFraudRings:
    def test_rings_mostly_intact(self):
        graph = fraud_network(
            80, n_rings=6, ring_size=4, rng=random.Random(1)
        )
        loom, assignment, events, capacity = loom_assign(
            graph, fraud_workload(), window=128
        )

        def intact(assignment):
            count = 0
            for ring in range(6):
                members = [f"a{ring * 4 + j}" for j in range(4)]
                members += [f"d{ring}", f"k{ring}"]
                if len({assignment.partition_of(v) for v in members}) == 1:
                    count += 1
            return count

        ldg = partition_stream(
            LinearDeterministicGreedy(), events, k=4, capacity=capacity
        )
        assert intact(assignment) >= intact(ldg)
        assert intact(assignment) >= 4  # most rings survive

    def test_ring_grouping_counted_in_stats(self):
        graph = fraud_network(60, n_rings=5, rng=random.Random(2))
        loom, assignment, _, _ = loom_assign(graph, fraud_workload())
        assert loom.stats["groups"] > 0


class TestProteinStructures:
    def test_complex_triangles_colocated(self):
        graph = protein_network(
            4, n_complexes=8, background_proteins=0, rng=random.Random(3)
        )
        loom, assignment, _, _ = loom_assign(
            graph, protein_workload(), threshold=0.2, window=64
        )
        triangle = protein_workload().queries[2]
        matches = triangle.answer(graph)
        assert matches
        split = sum(
            1
            for match in matches
            if len({assignment.partition_of(v) for v in match.vertices()}) > 1
        )
        assert split <= len(matches) // 2

    def test_pathways_benefit_from_grouping(self):
        graph = protein_network(
            16, n_complexes=0, background_proteins=10, rng=random.Random(4)
        )
        loom, assignment, events, capacity = loom_assign(
            graph, protein_workload(), threshold=0.2, window=96
        )
        signalling = protein_workload().queries[0]

        def split_fraction(assignment):
            matches = signalling.answer(graph)
            split = sum(
                1
                for match in matches
                if len({assignment.partition_of(v) for v in match.vertices()}) > 1
            )
            return split / len(matches)

        ldg = partition_stream(
            LinearDeterministicGreedy(), events, k=4, capacity=capacity
        )
        assert split_fraction(assignment) <= split_fraction(ldg) + 1e-9
