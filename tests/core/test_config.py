"""Validation tests for LoomConfig."""

import pytest

from repro.core import LoomConfig
from repro.exceptions import ConfigurationError


class TestLoomConfig:
    def test_valid_defaults(self):
        config = LoomConfig(k=4, capacity=100)
        assert config.window_size == 64
        assert config.group_matches is True
        assert config.resignature_fix is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0, "capacity": 10},
            {"k": 2, "capacity": 0},
            {"k": 2, "capacity": 10, "window_size": 0},
            {"k": 2, "capacity": 10, "motif_threshold": 0.0},
            {"k": 2, "capacity": 10, "motif_threshold": -0.5},
            {"k": 2, "capacity": 10, "max_group_size": 1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoomConfig(**kwargs)

    def test_frozen(self):
        config = LoomConfig(k=2, capacity=10)
        with pytest.raises(AttributeError):
            config.k = 3  # type: ignore[misc]

    def test_threshold_above_one_allowed(self):
        # T > 1 is the documented way to disable motif grouping (E5).
        config = LoomConfig(k=2, capacity=10, motif_threshold=1.01)
        assert config.motif_threshold == 1.01
