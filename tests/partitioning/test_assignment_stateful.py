"""Stateful property tests for PartitionAssignment.

Two machines: the original assign/move machine, and a churn machine
exercising arbitrary add/remove sequences plus the incrementally
maintained neighbour index and capacity growth -- the invariants the
dynamic-graph stack leans on (capacity accounting exact after removals,
note/unnote symmetry, grow_capacity monotone).
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.exceptions import CapacityExceededError, PartitioningError
from repro.partitioning import PartitionAssignment

K = 3
CAPACITY = 4


class AssignmentMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.assignment = PartitionAssignment(K, CAPACITY)
        self.model: dict[int, int] = {}
        self.next_id = 0

    @precondition(lambda self: len(self.model) < K * CAPACITY)
    @rule(data=st.data())
    def assign_fresh(self, data):
        feasible = self.assignment.feasible_partitions()
        partition = data.draw(st.sampled_from(feasible))
        vertex = self.next_id
        self.next_id += 1
        self.assignment.assign(vertex, partition)
        self.model[vertex] = partition

    @precondition(lambda self: bool(self.model))
    @rule(data=st.data())
    def move_existing(self, data):
        vertex = data.draw(st.sampled_from(sorted(self.model)))
        target = data.draw(st.integers(min_value=0, max_value=K - 1))
        if (
            target != self.model[vertex]
            and self.assignment.size(target) >= CAPACITY
        ):
            try:
                self.assignment.move(vertex, target)
                raise AssertionError("move into a full partition succeeded")
            except CapacityExceededError:
                return
        self.assignment.move(vertex, target)
        self.model[vertex] = target

    # ------------------------------------------------------------------
    @invariant()
    def placements_match_model(self):
        for vertex, partition in self.model.items():
            assert self.assignment.partition_of(vertex) == partition

    @invariant()
    def sizes_consistent(self):
        sizes = self.assignment.sizes()
        assert sum(sizes) == len(self.model)
        blocks = self.assignment.blocks()
        assert [len(b) for b in blocks] == sizes

    @invariant()
    def capacity_respected(self):
        assert all(size <= CAPACITY for size in self.assignment.sizes())


TestAssignmentStateful = AssignmentMachine.TestCase
TestAssignmentStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class ChurnAssignmentMachine(RuleBasedStateMachine):
    """Arbitrary add/remove/re-add sequences with neighbour-index upkeep."""

    def __init__(self):
        super().__init__()
        self.capacity = CAPACITY
        self.assignment = PartitionAssignment(K, self.capacity)
        self.model: dict[int, int] = {}
        #: pending vertex -> modelled per-partition neighbour counts.
        self.pending_model: dict[int, list[int]] = {}
        self.next_id = 0
        self.removed: list[int] = []

    # -- rules ----------------------------------------------------------
    @precondition(lambda self: any(
        size < self.capacity for size in self.assignment.sizes()
    ))
    @rule(data=st.data())
    def assign_vertex(self, data):
        feasible = self.assignment.feasible_partitions()
        partition = data.draw(st.sampled_from(feasible))
        # Sometimes re-add a previously removed id (slot churn).
        if self.removed and data.draw(st.booleans()):
            vertex = self.removed.pop()
        else:
            vertex = self.next_id
            self.next_id += 1
        self.assignment.assign(vertex, partition)
        self.model[vertex] = partition
        self.pending_model.pop(vertex, None)

    @precondition(lambda self: bool(self.model))
    @rule(data=st.data())
    def remove_vertex(self, data):
        vertex = data.draw(st.sampled_from(sorted(self.model)))
        vacated = self.assignment.remove(vertex)
        assert vacated == self.model.pop(vertex)
        self.removed.append(vertex)

    @rule()
    def remove_unassigned_raises(self):
        ghost = self.next_id + 10_000
        try:
            self.assignment.remove(ghost)
            raise AssertionError("removing an unassigned vertex succeeded")
        except PartitioningError:
            pass
        assert self.assignment.discard(ghost) is None

    @precondition(lambda self: bool(self.model))
    @rule(data=st.data())
    def note_edge(self, data):
        placed = data.draw(st.sampled_from(sorted(self.model)))
        pending = self.next_id + 1 + data.draw(st.integers(0, 2))
        self.assignment.note_edge(pending, placed)
        counts = self.pending_model.setdefault(pending, [0] * K)
        counts[self.model[placed]] += 1

    @precondition(lambda self: bool(self.pending_model) and bool(self.model))
    @rule(data=st.data())
    def unnote_edge(self, data):
        pending = data.draw(st.sampled_from(sorted(self.pending_model)))
        placed = data.draw(st.sampled_from(sorted(self.model)))
        self.assignment.unnote_edge(pending, placed)
        counts = self.pending_model[pending]
        partition = self.model[placed]
        if counts[partition] > 0:
            counts[partition] -= 1

    @rule(extra=st.integers(min_value=0, max_value=3))
    def grow_capacity(self, extra):
        self.assignment.grow_capacity(self.capacity + extra)
        self.capacity += extra

    @precondition(lambda self: self.capacity > 1)
    @rule()
    def shrink_capacity_refused(self):
        try:
            self.assignment.grow_capacity(self.capacity - 1)
            raise AssertionError("capacity shrink succeeded")
        except PartitioningError:
            pass
        assert self.assignment.capacity == self.capacity

    # -- invariants -----------------------------------------------------
    @invariant()
    def capacity_accounting_exact(self):
        sizes = self.assignment.sizes()
        assert sum(sizes) == len(self.model) == self.assignment.num_assigned
        assert [len(b) for b in self.assignment.blocks()] == sizes
        assert all(0 <= size <= self.capacity for size in sizes)

    @invariant()
    def placements_match_model(self):
        for vertex, partition in self.model.items():
            assert self.assignment.partition_of(vertex) == partition
        for vertex in self.removed:
            assert self.assignment.partition_of(vertex) is None

    @invariant()
    def neighbour_index_matches_model(self):
        for pending, counts in self.pending_model.items():
            cached = self.assignment.cached_neighbour_counts(pending)
            assert (cached or [0] * K) == counts

    @invariant()
    def capacity_monotone(self):
        assert self.assignment.capacity == self.capacity


TestChurnAssignmentStateful = ChurnAssignmentMachine.TestCase
TestChurnAssignmentStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
