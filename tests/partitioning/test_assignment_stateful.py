"""Stateful property test for PartitionAssignment."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.exceptions import CapacityExceededError
from repro.partitioning import PartitionAssignment

K = 3
CAPACITY = 4


class AssignmentMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.assignment = PartitionAssignment(K, CAPACITY)
        self.model: dict[int, int] = {}
        self.next_id = 0

    @precondition(lambda self: len(self.model) < K * CAPACITY)
    @rule(data=st.data())
    def assign_fresh(self, data):
        feasible = self.assignment.feasible_partitions()
        partition = data.draw(st.sampled_from(feasible))
        vertex = self.next_id
        self.next_id += 1
        self.assignment.assign(vertex, partition)
        self.model[vertex] = partition

    @precondition(lambda self: bool(self.model))
    @rule(data=st.data())
    def move_existing(self, data):
        vertex = data.draw(st.sampled_from(sorted(self.model)))
        target = data.draw(st.integers(min_value=0, max_value=K - 1))
        if (
            target != self.model[vertex]
            and self.assignment.size(target) >= CAPACITY
        ):
            try:
                self.assignment.move(vertex, target)
                raise AssertionError("move into a full partition succeeded")
            except CapacityExceededError:
                return
        self.assignment.move(vertex, target)
        self.model[vertex] = target

    # ------------------------------------------------------------------
    @invariant()
    def placements_match_model(self):
        for vertex, partition in self.model.items():
            assert self.assignment.partition_of(vertex) == partition

    @invariant()
    def sizes_consistent(self):
        sizes = self.assignment.sizes()
        assert sum(sizes) == len(self.model)
        blocks = self.assignment.blocks()
        assert [len(b) for b in blocks] == sizes

    @invariant()
    def capacity_respected(self):
        assert all(size <= CAPACITY for size in self.assignment.sizes())


TestAssignmentStateful = AssignmentMachine.TestCase
TestAssignmentStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
