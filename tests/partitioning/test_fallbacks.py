"""Fallback and saturation behaviour of the streaming heuristics.

When partitions fill up, every heuristic must degrade gracefully to a
feasible placement rather than fail -- the capacity constraint is the
one invariant no streaming decision may break.
"""

import random

import pytest

from repro.exceptions import CapacityExceededError
from repro.graph import LabelledGraph
from repro.partitioning import (
    BalancedPartitioner,
    ChunkingPartitioner,
    FennelPartitioner,
    HashPartitioner,
    LinearDeterministicGreedy,
    PartitionAssignment,
    RandomPartitioner,
)
from repro.partitioning.base import partition_stream
from repro.stream.sources import stream_from_graph

HEURISTICS = [
    HashPartitioner,
    RandomPartitioner,
    BalancedPartitioner,
    ChunkingPartitioner,
    LinearDeterministicGreedy,
    FennelPartitioner,
]


def saturated_assignment(k=2, capacity=2, leave_room_in=1):
    """All partitions full except one slot in ``leave_room_in``."""
    assignment = PartitionAssignment(k, capacity)
    counter = 0
    for partition in range(k):
        fill = capacity - (1 if partition == leave_room_in else 0)
        for _ in range(fill):
            assignment.assign(f"pre{counter}", partition)
            counter += 1
    return assignment


class TestSaturation:
    @pytest.mark.parametrize("cls", HEURISTICS)
    def test_only_feasible_partition_chosen(self, cls):
        assignment = saturated_assignment(k=3, capacity=3, leave_room_in=2)
        partitioner = cls()
        chosen = partitioner.place("new", "a", [], assignment)
        assert chosen == 2

    @pytest.mark.parametrize("cls", HEURISTICS)
    def test_hard_full_raises(self, cls):
        assignment = PartitionAssignment(2, 1)
        assignment.assign("x", 0)
        assignment.assign("y", 1)
        partitioner = cls()
        with pytest.raises(CapacityExceededError):
            partitioner.place("z", "a", [], assignment)

    def test_ldg_ignores_neighbours_in_full_partitions(self):
        # All of v's neighbours sit in the full partition; LDG must still
        # pick the one with room.
        assignment = saturated_assignment(k=2, capacity=3, leave_room_in=1)
        partitioner = LinearDeterministicGreedy()
        neighbours = ["pre0", "pre1", "pre2"]  # all in partition 0 (full)
        chosen = partitioner.place("v", "a", neighbours, assignment)
        assert chosen == 1

    def test_exact_fit_stream_completes(self):
        # n == k * capacity exactly: the stream must fill every slot.
        graph = LabelledGraph()
        for v in range(12):
            graph.add_vertex(v, "a")
        for v in range(1, 12):
            graph.add_edge(v - 1, v)
        events = stream_from_graph(graph, ordering="random", rng=random.Random(1))
        for cls in HEURISTICS:
            assignment = partition_stream(cls(), events, k=3, capacity=4)
            assert assignment.sizes() == [4, 4, 4]


class TestNeighbourCounting:
    def test_unassigned_neighbours_ignored(self):
        assignment = PartitionAssignment(2, 10)
        assignment.assign("placed", 1)
        partitioner = LinearDeterministicGreedy()
        # "ghost" was never assigned (still in some window elsewhere).
        chosen = partitioner.place("v", "a", ["placed", "ghost"], assignment)
        assert chosen == 1

    def test_duplicate_neighbours_count_twice(self):
        # Multi-edges don't exist, but the same neighbour may legitimately
        # appear once; duplicated input should not crash and counts double
        # (callers pass sets/frozensets in practice).
        assignment = PartitionAssignment(2, 10)
        assignment.assign("n", 0)
        partitioner = LinearDeterministicGreedy()
        counts = partitioner.neighbour_counts(["n", "n"], assignment)
        assert counts == [2, 0]
