"""Tests for PartitionAssignment and the streaming driver."""

import random

import pytest

from repro.exceptions import CapacityExceededError, PartitioningError
from repro.graph import LabelledGraph
from repro.graph.generators import erdos_renyi
from repro.partitioning import (
    HashPartitioner,
    LinearDeterministicGreedy,
    PartitionAssignment,
    partition_graph,
    partition_stream,
)
from repro.partitioning.base import default_capacity
from repro.stream import EdgeArrival, VertexArrival


class TestPartitionAssignment:
    def test_assign_and_lookup(self):
        a = PartitionAssignment(2, 4)
        a.assign("v", 1)
        assert a.partition_of("v") == 1
        assert a.size(1) == 1

    def test_unassigned_is_none(self):
        a = PartitionAssignment(2, 4)
        assert a.partition_of("missing") is None

    def test_double_assign_rejected(self):
        a = PartitionAssignment(2, 4)
        a.assign("v", 0)
        with pytest.raises(PartitioningError):
            a.assign("v", 1)

    def test_out_of_range_partition_rejected(self):
        a = PartitionAssignment(2, 4)
        with pytest.raises(PartitioningError):
            a.assign("v", 2)

    def test_capacity_enforced(self):
        a = PartitionAssignment(2, 1)
        a.assign("x", 0)
        with pytest.raises(CapacityExceededError):
            a.assign("y", 0)

    def test_move_updates_sizes(self):
        a = PartitionAssignment(2, 4)
        a.assign("v", 0)
        a.move("v", 1)
        assert a.partition_of("v") == 1
        assert a.sizes() == [0, 1]

    def test_move_unassigned_rejected(self):
        a = PartitionAssignment(2, 4)
        with pytest.raises(PartitioningError):
            a.move("v", 1)

    def test_feasible_partitions_with_room(self):
        a = PartitionAssignment(2, 2)
        a.assign("x", 0)
        assert a.feasible_partitions(room_for=2) == [1]

    def test_blocks(self):
        a = PartitionAssignment(2, 4)
        a.assign("x", 0)
        a.assign("y", 1)
        a.assign("z", 0)
        assert a.blocks() == [{"x", "z"}, {"y"}]

    def test_bad_construction(self):
        with pytest.raises(PartitioningError):
            PartitionAssignment(0, 4)
        with pytest.raises(PartitioningError):
            PartitionAssignment(2, 0)

    def test_default_capacity(self):
        assert default_capacity(100, 4, 1.0) == 25
        assert default_capacity(100, 4, 1.1) == 28
        with pytest.raises(PartitioningError):
            default_capacity(10, 2, 0.5)


class TestStreamingDriver:
    def test_every_vertex_assigned(self):
        g = erdos_renyi(40, 0.1, rng=random.Random(1))
        assignment = partition_graph(
            HashPartitioner(), g, k=4, rng=random.Random(2)
        )
        assert assignment.num_assigned == 40
        for v in g.vertices():
            assert assignment.partition_of(v) is not None

    def test_vertex_placed_with_its_arrival_edges(self):
        # Star: centre arrives last and sees all leaves -> LDG puts it with
        # the partition holding most leaves.
        g = LabelledGraph.star("a", "bbbb")
        order = [1, 2, 3, 4, 0]
        from repro.stream.sources import stream_vertices

        events = stream_vertices(g, order)
        assignment = partition_stream(
            LinearDeterministicGreedy(), events, k=2, capacity=4
        )
        centre = assignment.partition_of(0)
        leaf_partitions = [assignment.partition_of(v) for v in (1, 2, 3, 4)]
        assert leaf_partitions.count(centre) >= 2

    def test_late_edges_ignored_for_placement(self):
        events = [
            VertexArrival(0, "a", 0),
            VertexArrival(1, "a", 1),
            EdgeArrival(0, 1, 2),  # late: both endpoints already placed
        ]
        assignment = partition_stream(
            LinearDeterministicGreedy(), events, k=2, capacity=2
        )
        assert assignment.num_assigned == 2

    def test_capacity_never_violated(self):
        g = erdos_renyi(30, 0.2, rng=random.Random(3))
        assignment = partition_graph(
            LinearDeterministicGreedy(),
            g,
            k=3,
            rng=random.Random(4),
            slack=1.0,
        )
        assert max(assignment.sizes()) <= assignment.capacity

    def test_deterministic_given_seed(self):
        g = erdos_renyi(30, 0.2, rng=random.Random(5))
        a = partition_graph(
            LinearDeterministicGreedy(), g, k=3, rng=random.Random(6)
        )
        b = partition_graph(
            LinearDeterministicGreedy(), g, k=3, rng=random.Random(6)
        )
        assert a.assigned() == b.assigned()

    def test_explicit_capacity_respected(self):
        g = erdos_renyi(20, 0.1, rng=random.Random(7))
        assignment = partition_graph(
            HashPartitioner(), g, k=2, rng=random.Random(8), capacity=15
        )
        assert assignment.capacity == 15
