"""Tests for the streaming heuristics (hash, S&K family, Fennel)."""

import random

import pytest

from repro.exceptions import PartitioningError
from repro.graph import LabelledGraph
from repro.graph.generators import erdos_renyi, planted_partition
from repro.partitioning import (
    BalancedPartitioner,
    ChunkingPartitioner,
    DeterministicGreedy,
    ExponentialDeterministicGreedy,
    FennelPartitioner,
    HashPartitioner,
    LinearDeterministicGreedy,
    RandomPartitioner,
    edge_cut_fraction,
    normalised_max_load,
    partition_graph,
)
from repro.partitioning.base import PartitionAssignment
from repro.partitioning.hashing import stable_hash
from repro.partitioning.streaming import (
    choose_partition_for_group,
    ldg_group_score,
    ldg_score,
)

ALL_PARTITIONERS = [
    HashPartitioner,
    RandomPartitioner,
    BalancedPartitioner,
    ChunkingPartitioner,
    DeterministicGreedy,
    LinearDeterministicGreedy,
    ExponentialDeterministicGreedy,
    FennelPartitioner,
]


def community_graph(seed=11):
    return planted_partition(120, 4, 0.25, 0.005, rng=random.Random(seed))


class TestAllPartitionersContract:
    @pytest.mark.parametrize("cls", ALL_PARTITIONERS)
    def test_all_vertices_assigned_and_capacity_kept(self, cls):
        g = community_graph()
        assignment = partition_graph(cls(), g, k=4, rng=random.Random(1))
        assert assignment.num_assigned == g.num_vertices
        assert max(assignment.sizes()) <= assignment.capacity

    @pytest.mark.parametrize("cls", ALL_PARTITIONERS)
    def test_k1_puts_everything_together(self, cls):
        g = erdos_renyi(15, 0.2, rng=random.Random(2))
        assignment = partition_graph(cls(), g, k=1, rng=random.Random(3))
        assert assignment.sizes() == [15]


class TestHash:
    def test_stable_hash_is_process_independent(self):
        assert stable_hash("alice") == stable_hash("alice")
        assert stable_hash(42) != stable_hash("42")

    def test_roughly_balanced(self):
        g = erdos_renyi(400, 0.01, rng=random.Random(4))
        assignment = partition_graph(HashPartitioner(), g, k=4, rng=random.Random(5))
        assert normalised_max_load(assignment) < 1.2

    def test_cut_near_one_minus_one_over_k(self):
        g = erdos_renyi(300, 0.05, rng=random.Random(6))
        assignment = partition_graph(HashPartitioner(), g, k=4, rng=random.Random(7))
        fraction = edge_cut_fraction(g, assignment)
        assert 0.65 < fraction < 0.85  # expectation 0.75


class TestChunkingAndBalanced:
    def test_chunking_fills_in_order(self):
        g = LabelledGraph.from_edges({i: "a" for i in range(6)})
        assignment = partition_graph(
            ChunkingPartitioner(), g, k=3, ordering="natural", capacity=2
        )
        assert assignment.sizes() == [2, 2, 2]
        assert assignment.partition_of(0) == 0
        assert assignment.partition_of(5) == 2

    def test_balanced_perfectly_even(self):
        g = erdos_renyi(90, 0.05, rng=random.Random(8))
        assignment = partition_graph(
            BalancedPartitioner(), g, k=3, rng=random.Random(9)
        )
        assert max(assignment.sizes()) - min(assignment.sizes()) <= 1


class TestLDG:
    def test_beats_hash_on_structured_graph(self):
        g = community_graph()
        hash_cut = edge_cut_fraction(
            g, partition_graph(HashPartitioner(), g, k=4, rng=random.Random(10))
        )
        ldg_cut = edge_cut_fraction(
            g,
            partition_graph(
                LinearDeterministicGreedy(), g, k=4, rng=random.Random(10)
            ),
        )
        assert ldg_cut < hash_cut

    def test_score_prefers_emptier_partition(self):
        assert ldg_score(3, 2, 10) > ldg_score(3, 8, 10)

    def test_score_zero_when_full(self):
        assert ldg_score(5, 10, 10) == 0.0

    def test_singleton_vertex_goes_to_least_loaded(self):
        a = PartitionAssignment(3, 10)
        a.assign("x", 0)
        partitioner = LinearDeterministicGreedy()
        chosen = partitioner.place("lonely", "a", [], a)
        assert chosen in (1, 2)

    def test_group_score_penalises_large_groups(self):
        small = ldg_group_score(4, 5, 1, 10)
        large = ldg_group_score(4, 5, 5, 10)
        assert large < small

    def test_choose_partition_for_group_respects_room(self):
        a = PartitionAssignment(2, 5)
        for i in range(4):
            a.assign(f"p0_{i}", 0)
        # Group of 3 only fits in partition 1 even if its edges point to 0.
        chosen = choose_partition_for_group(a, {0: 10, 1: 0}, 3)
        assert chosen == 1

    def test_choose_partition_for_group_no_room_raises(self):
        a = PartitionAssignment(1, 2)
        a.assign("x", 0)
        with pytest.raises(LookupError):
            choose_partition_for_group(a, {}, 5)


class TestFennel:
    def test_beats_hash_on_structured_graph(self):
        g = community_graph()
        hash_cut = edge_cut_fraction(
            g, partition_graph(HashPartitioner(), g, k=4, rng=random.Random(12))
        )
        fennel_cut = edge_cut_fraction(
            g,
            partition_graph(
                FennelPartitioner(
                    expected_vertices=g.num_vertices,
                    expected_edges=g.num_edges,
                ),
                g,
                k=4,
                rng=random.Random(12),
            ),
        )
        assert fennel_cut < hash_cut

    def test_adaptive_mode_runs_without_expectations(self):
        g = community_graph(13)
        assignment = partition_graph(
            FennelPartitioner(), g, k=4, rng=random.Random(13)
        )
        assert assignment.num_assigned == g.num_vertices

    def test_balance_respected(self):
        g = community_graph(14)
        assignment = partition_graph(
            FennelPartitioner(
                expected_vertices=g.num_vertices, expected_edges=g.num_edges
            ),
            g,
            k=4,
            rng=random.Random(14),
        )
        assert normalised_max_load(assignment) <= 1.2

    def test_bad_parameters(self):
        with pytest.raises(PartitioningError):
            FennelPartitioner(gamma=1.0)
        with pytest.raises(PartitioningError):
            FennelPartitioner(balance_slack=0.9)
