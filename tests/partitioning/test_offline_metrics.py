"""Tests for the multilevel offline partitioner and quality metrics."""

import random

import pytest

from repro.exceptions import PartitioningError
from repro.graph import LabelledGraph
from repro.graph.generators import erdos_renyi, grid, planted_partition
from repro.partitioning import (
    HashPartitioner,
    LinearDeterministicGreedy,
    PartitionAssignment,
    cut_edges,
    edge_cut,
    edge_cut_fraction,
    multilevel_partition,
    normalised_max_load,
    partition_graph,
    quality,
)


def assigned_pair_graph():
    g = LabelledGraph.from_edges({0: "a", 1: "b", 2: "c"}, [(0, 1), (1, 2)])
    a = PartitionAssignment(2, 2)
    a.assign(0, 0)
    a.assign(1, 0)
    a.assign(2, 1)
    return g, a


class TestMetrics:
    def test_cut_edges_identified(self):
        g, a = assigned_pair_graph()
        assert cut_edges(g, a) == [(1, 2)]
        assert edge_cut(g, a) == 1

    def test_cut_fraction(self):
        g, a = assigned_pair_graph()
        assert edge_cut_fraction(g, a) == pytest.approx(0.5)

    def test_cut_fraction_empty_graph(self):
        g = LabelledGraph.from_edges({0: "a"})
        a = PartitionAssignment(2, 1)
        a.assign(0, 0)
        assert edge_cut_fraction(g, a) == 0.0

    def test_unassigned_endpoint_raises(self):
        g = LabelledGraph.path("ab")
        a = PartitionAssignment(2, 2)
        a.assign(0, 0)
        with pytest.raises(PartitioningError):
            edge_cut(g, a)

    def test_normalised_max_load(self):
        a = PartitionAssignment(2, 10)
        for i in range(3):
            a.assign(f"x{i}", 0)
        a.assign("y", 1)
        assert normalised_max_load(a) == pytest.approx(3 / 2)

    def test_quality_summary(self):
        g, a = assigned_pair_graph()
        q = quality(g, a)
        assert q.cut == 1
        assert q.sizes == (2, 1)
        assert "rho" in str(q)

    def test_quality_requires_full_assignment(self):
        g = LabelledGraph.path("ab")
        a = PartitionAssignment(2, 2)
        a.assign(0, 0)
        with pytest.raises(PartitioningError):
            quality(g, a)


class TestMultilevel:
    def test_partitions_whole_graph(self):
        g = planted_partition(160, 4, 0.2, 0.005, rng=random.Random(1))
        assignment = multilevel_partition(g, 4, rng=random.Random(2))
        assert assignment.num_assigned == g.num_vertices
        assert max(assignment.sizes()) <= assignment.capacity

    def test_finds_planted_communities(self):
        g = planted_partition(120, 4, 0.3, 0.002, rng=random.Random(3))
        assignment = multilevel_partition(g, 4, rng=random.Random(4))
        assert edge_cut_fraction(g, assignment) < 0.15

    def test_beats_streaming_on_structured_graph(self):
        g = planted_partition(160, 4, 0.2, 0.01, rng=random.Random(5))
        offline_cut = edge_cut_fraction(
            g, multilevel_partition(g, 4, rng=random.Random(6))
        )
        ldg_cut = edge_cut_fraction(
            g,
            partition_graph(
                LinearDeterministicGreedy(), g, k=4, rng=random.Random(6)
            ),
        )
        hash_cut = edge_cut_fraction(
            g, partition_graph(HashPartitioner(), g, k=4, rng=random.Random(6))
        )
        assert offline_cut <= ldg_cut <= hash_cut

    def test_grid_cut_is_small(self):
        g = grid(12, 12)
        assignment = multilevel_partition(g, 4, rng=random.Random(7))
        # A 12x12 grid has 264 edges; a good 4-way cut is well under 25%.
        assert edge_cut_fraction(g, assignment) < 0.25

    def test_k1_trivial(self):
        g = erdos_renyi(20, 0.2, rng=random.Random(8))
        assignment = multilevel_partition(g, 1, rng=random.Random(9))
        assert assignment.sizes() == [20]

    def test_balance_within_slack(self):
        g = erdos_renyi(150, 0.05, rng=random.Random(10))
        assignment = multilevel_partition(g, 5, slack=1.1, rng=random.Random(11))
        assert normalised_max_load(assignment) <= 1.1 + 1e-9

    def test_empty_graph_rejected(self):
        with pytest.raises(PartitioningError):
            multilevel_partition(LabelledGraph(), 2)

    def test_deterministic_given_seed(self):
        g = erdos_renyi(60, 0.1, rng=random.Random(12))
        a = multilevel_partition(g, 3, rng=random.Random(13))
        b = multilevel_partition(g, 3, rng=random.Random(13))
        assert a.assigned() == b.assigned()

    def test_disconnected_graph_handled(self):
        g = LabelledGraph()
        for i in range(12):
            g.add_vertex(i, "a")
        for base in (0, 4, 8):
            g.add_edge(base, base + 1)
            g.add_edge(base + 1, base + 2)
            g.add_edge(base + 2, base + 3)
        assignment = multilevel_partition(g, 3, rng=random.Random(14))
        assert assignment.num_assigned == 12
