"""Tests for workload profiling and the workload-aware offline partitioner."""

import random

import pytest

from repro.cluster import DistributedGraphStore, run_workload
from repro.graph import LabelledGraph, edge_key
from repro.graph.generators import plant_motifs
from repro.partitioning import multilevel_partition
from repro.partitioning.workload_offline import (
    profile_workload,
    traversal_edge_weights,
    workload_aware_multilevel,
)
from repro.workload import PatternQuery, Workload, figure1_graph, figure1_workload


class TestProfiling:
    def test_profile_counts_only_real_edges(self):
        graph = figure1_graph()
        counts = profile_workload(
            graph, figure1_workload(), executions=20, rng=random.Random(1)
        )
        assert counts
        for u, v in counts:
            assert graph.has_edge(u, v)

    def test_hot_query_edges_dominate(self):
        # With the workload solely q1 (the square), the square's edges
        # must be the most traversed.
        graph = figure1_graph()
        workload = Workload([PatternQuery("q1", LabelledGraph.cycle("abab"))])
        counts = profile_workload(
            graph, workload, executions=20, rng=random.Random(2)
        )
        square_edges = {
            edge_key(1, 2), edge_key(1, 5), edge_key(2, 6), edge_key(5, 6)
        }
        hot = max(counts, key=counts.get)
        assert hot in square_edges or counts[hot] == max(
            counts.get(e, 0) for e in square_edges
        )

    def test_profile_deterministic(self):
        graph = figure1_graph()
        a = profile_workload(
            graph, figure1_workload(), executions=15, rng=random.Random(3)
        )
        b = profile_workload(
            graph, figure1_workload(), executions=15, rng=random.Random(3)
        )
        assert a == b


class TestEdgeWeights:
    def test_every_edge_weighted(self):
        graph = figure1_graph()
        weights = traversal_edge_weights(graph, {edge_key(1, 2): 5})
        assert len(weights) == graph.num_edges
        assert weights[edge_key(1, 2)] == 6
        assert weights[edge_key(3, 4)] == 1

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            traversal_edge_weights(figure1_graph(), {}, base_weight=-1)


class TestWorkloadAwareMultilevel:
    def _testbed(self):
        motif = LabelledGraph.path("abc")
        graph = plant_motifs(
            [(motif, 30)], noise_vertices=60,
            noise_edge_probability=0.01, rng=random.Random(4),
        )
        workload = Workload([PatternQuery("abc", motif)])
        return graph, workload

    def test_complete_valid_assignment(self):
        graph, workload = self._testbed()
        assignment = workload_aware_multilevel(
            graph, workload, 4, rng=random.Random(5)
        )
        assert assignment.num_assigned == graph.num_vertices
        assert max(assignment.sizes()) <= assignment.capacity

    def test_beats_plain_offline_on_workload_metric(self):
        graph, workload = self._testbed()
        plain = multilevel_partition(graph, 8, rng=random.Random(6))
        aware = workload_aware_multilevel(
            graph, workload, 8, rng=random.Random(6)
        )

        def p_remote(assignment):
            stats = run_workload(
                DistributedGraphStore(graph, assignment), workload,
                executions=60, rng=random.Random(7),
            )
            return stats.remote_probability

        assert p_remote(aware) <= p_remote(plain) + 0.02

    def test_weighted_multilevel_respects_heavy_edges(self):
        # Two cliques joined by one bridge; making the bridge heavy must
        # not stop the partitioner cutting it (it is the only sane cut),
        # but making *intra-clique* edges heavy must keep cliques whole.
        graph = LabelledGraph()
        for v in range(8):
            graph.add_vertex(v, "a")
        for base in (0, 4):
            for i in range(base, base + 4):
                for j in range(i + 1, base + 4):
                    graph.add_edge(i, j)
        graph.add_edge(0, 4)  # bridge
        weights = {edge_key(u, v): 10 for u, v in graph.edges()}
        weights[edge_key(0, 4)] = 1
        assignment = multilevel_partition(
            graph, 2, rng=random.Random(8), edge_weights=weights
        )
        left = {assignment.partition_of(v) for v in range(4)}
        right = {assignment.partition_of(v) for v in range(4, 8)}
        assert len(left) == 1 and len(right) == 1
        assert left != right
